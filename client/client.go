// Package client is the Go client of the oblivserve HTTP/JSON surface
// (internal/serve): load and drop relations, run declarative query specs,
// and read the per-query execution stats the server reports — the cached
// flag and executed sort-pass counts the cross-query planner is judged
// by. The wire structs mirror the server's; both sides are exercised
// against each other by the serve-smoke CI job.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Row is one (keys..., value) record on the wire.
type Row struct {
	Keys []uint64 `json:"keys"`
	Val  uint64   `json:"val"`
}

// Filter is the declarative filter clause: compare column Col (a key
// column by index, or the value column when -1) against Value with Op
// (eq, ne, lt, le, gt, ge).
type Filter struct {
	Col   int    `json:"col"`
	Op    string `json:"op"`
	Value uint64 `json:"value"`
}

// Join is the declarative join clause against a loaded relation. Set
// MaxOut to a public output capacity, or JoinCap to "auto" to let the
// server's capacity advisor size the output at the worst-case match bound
// (mutually exclusive).
type Join struct {
	Table   string `json:"table"`
	MaxOut  int    `json:"max_out,omitempty"`
	JoinCap string `json:"join_cap,omitempty"`
}

// Spec is one declarative query over a loaded relation. Graph, when set
// to "cc", "msf", or "pagerank", runs that graph operator over the named
// width-2 edge table instead of the relational pipeline (the relational
// clauses must then be absent); GraphRounds is the fixed round count for
// "cc" (0 = converge) and the iteration count for "pagerank".
type Spec struct {
	Table       string  `json:"table"`
	Join        *Join   `json:"join,omitempty"`
	Filter      *Filter `json:"filter,omitempty"`
	Distinct    bool    `json:"distinct,omitempty"`
	GroupBy     string  `json:"group_by,omitempty"`
	TopK        int     `json:"top_k,omitempty"`
	KeyOrderOut bool    `json:"key_order_out,omitempty"`
	NoOptimize  bool    `json:"no_optimize,omitempty"`
	As          string  `json:"as,omitempty"`
	Graph       string  `json:"graph,omitempty"`
	GraphRounds int     `json:"graph_rounds,omitempty"`
}

// Stats is the server's per-query execution accounting.
type Stats struct {
	Cached         bool   `json:"cached"`
	SortPasses     int    `json:"sort_passes"`
	ColdSortPasses int    `json:"cold_sort_passes"`
	Plan           string `json:"plan"`
	Order          string `json:"order"`
}

// TableInfo is the public metadata of one loaded relation.
type TableInfo struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Rows    int    `json:"rows"`
	Width   int    `json:"width"`
	Order   string `json:"order"`
}

// QueryResult is one query's rows plus stats.
type QueryResult struct {
	Rows          []Row  `json:"rows"`
	Stats         Stats  `json:"stats"`
	StoredAs      string `json:"stored_as,omitempty"`
	StoredVersion int    `json:"stored_version,omitempty"`
}

// RetryPolicy bounds the client's automatic retries. Retries happen on
// HTTP 429 (admission queue full) and 503 (server draining) — statuses
// the server only returns before executing anything — and, for
// idempotent calls, on transport errors (connection refused/reset, where
// the request may never have reached a server). Backoff is exponential
// with full jitter: attempt k sleeps a uniform draw from
// (0, min(Base·2^k, Max)].
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first try
	// (0 = no retries).
	MaxRetries int
	// Base is the first backoff ceiling (0 = 50ms).
	Base time.Duration
	// Max caps the backoff ceiling (0 = 2s).
	Max time.Duration
}

// DefaultRetryPolicy is what New installs: 4 retries, 50ms..2s jittered
// exponential backoff — enough to ride out a lane draining or a short
// admission storm without hammering a loaded server.
var DefaultRetryPolicy = RetryPolicy{MaxRetries: 4, Base: 50 * time.Millisecond, Max: 2 * time.Second}

// DefaultTimeout bounds one HTTP call of a client built by New.
// Oblivious queries run full padded passes, so the default is generous;
// use NewWithHTTP to supply your own bound (or none).
const DefaultTimeout = 5 * time.Minute

// Client talks to one oblivserve instance.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// New returns a client for the server at base (e.g.
// "http://localhost:8344") with DefaultTimeout on the underlying
// http.Client and DefaultRetryPolicy installed.
func New(base string) *Client {
	return NewWithHTTP(base, &http.Client{Timeout: DefaultTimeout})
}

// NewWithHTTP is New with a caller-supplied http.Client (still with the
// default retry policy; override via WithRetry).
func NewWithHTTP(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc, retry: DefaultRetryPolicy}
}

// WithRetry returns a copy of the client using policy p (a zero policy
// disables retries).
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cc := *c
	cc.retry = p
	return &cc
}

// apiError is a non-2xx server response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("oblivserve: %s (HTTP %d)", e.Msg, e.Status)
}

// retryableStatus reports the statuses the server returns without having
// executed anything, so a retry can never double-apply an effect.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// backoff sleeps the full-jitter exponential delay for re-attempt k
// (0-based).
func (p RetryPolicy) backoff(k int) {
	base, max := p.Base, p.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << k
	if d > max || d <= 0 {
		d = max
	}
	time.Sleep(time.Duration(1 + rand.Int63n(int64(d))))
}

// do runs one API call with the client's retry policy. idempotent marks
// calls safe to re-send after a transport error, where the request may
// have executed without the client learning the outcome; non-idempotent
// calls (Load without replace) only retry on the pre-execution statuses.
func (c *Client) do(method, path string, in, out any, idempotent bool) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = b
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.doOnce(method, path, payload, out)
		if lastErr == nil || attempt >= c.retry.MaxRetries {
			return lastErr
		}
		var ae *apiError
		switch {
		case errors.As(lastErr, &ae):
			if !retryableStatus(ae.Status) {
				return lastErr
			}
		case !idempotent:
			return lastErr
		}
		c.retry.backoff(attempt)
	}
}

func (c *Client) doOnce(method, path string, payload []byte, out any) error {
	var req *http.Request
	var err error
	if payload != nil {
		req, err = http.NewRequest(method, c.base+path, bytes.NewReader(payload))
	} else {
		req, err = http.NewRequest(method, c.base+path, nil)
	}
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks liveness (single shot — WaitReady owns the retrying).
func (c *Client) Health() error {
	return c.doOnce(http.MethodGet, "/v1/healthz", nil, nil)
}

// WaitReady polls Health until the server answers or the timeout lapses,
// backing off from 10ms up to 500ms between probes.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	delay := 10 * time.Millisecond
	for {
		err := c.Health()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("oblivserve: not ready after %v: %w", timeout, err)
		}
		time.Sleep(delay)
		if delay *= 2; delay > 500*time.Millisecond {
			delay = 500 * time.Millisecond
		}
	}
}

// Load binds rows to name on the server. Without replace a transport
// error is not retried: the first attempt may have bound the table, and a
// blind re-send would misreport ErrTableExists.
func (c *Client) Load(name string, rows []Row, replace bool) (TableInfo, error) {
	var info TableInfo
	err := c.do(http.MethodPost, "/v1/tables", struct {
		Name    string `json:"name"`
		Rows    []Row  `json:"rows"`
		Replace bool   `json:"replace,omitempty"`
	}{name, rows, replace}, &info, replace)
	return info, err
}

// List returns the loaded relations' metadata.
func (c *Client) List() ([]TableInfo, error) {
	var out []TableInfo
	err := c.do(http.MethodGet, "/v1/tables", nil, &out, true)
	return out, err
}

// Drop unbinds name.
func (c *Client) Drop(name string) error {
	return c.do(http.MethodDelete, "/v1/tables/"+url.PathEscape(name), nil, nil, true)
}

// Query executes spec. Queries are read-only against the registry (an As
// store replaces, so re-running is safe), hence retried like idempotent
// calls.
func (c *Client) Query(spec Spec) (QueryResult, error) {
	var out QueryResult
	err := c.do(http.MethodPost, "/v1/query", spec, &out, true)
	return out, err
}

// Explain renders spec's order-aware plan without executing it.
func (c *Client) Explain(spec Spec) (string, error) {
	var out struct {
		Plan string `json:"plan"`
	}
	err := c.do(http.MethodPost, "/v1/explain", spec, &out, true)
	return out.Plan, err
}
