package client

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps test backoffs in the microsecond range.
var fastRetry = RetryPolicy{MaxRetries: 3, Base: time.Microsecond, Max: 10 * time.Microsecond}

// TestQueryRetriesBusy pins the backpressure loop: 429 (admission queue
// full) responses are retried with backoff until the server admits the
// query.
func TestQueryRetriesBusy(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "busy"})
			return
		}
		_ = json.NewEncoder(w).Encode(QueryResult{Stats: Stats{SortPasses: 3}})
	}))
	defer ts.Close()

	res, err := New(ts.URL).WithRetry(fastRetry).Query(Spec{Table: "t"})
	if err != nil {
		t.Fatalf("query through two 429s: %v", err)
	}
	if res.Stats.SortPasses != 3 {
		t.Fatalf("got stats %+v after retries", res.Stats)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 busy + 1 ok)", n)
	}
}

// TestRetryStopsOnTerminalStatus pins that non-retryable statuses (a 404
// for a missing table) fail immediately — no blind retry storm.
func TestRetryStopsOnTerminalStatus(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "no such table"})
	}))
	defer ts.Close()

	_, err := New(ts.URL).WithRetry(fastRetry).Query(Spec{Table: "missing"})
	if err == nil {
		t.Fatal("404 query unexpectedly succeeded")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls for a terminal status, want 1", n)
	}
}

// TestLoadWithoutReplaceSkipsTransportRetry pins the idempotency guard: a
// connection error on a non-replacing Load is not re-sent (the first
// attempt may have bound the table), while an idempotent List is.
func TestLoadWithoutReplaceSkipsTransportRetry(t *testing.T) {
	// A server that closed: every call is a connection error.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close()
	c := New(ts.URL).WithRetry(fastRetry)
	start := time.Now()
	if _, err := c.Load("t", []Row{{Keys: []uint64{1}, Val: 2}}, false); err == nil {
		t.Fatal("Load against a closed server succeeded")
	}
	// One attempt, no backoff sleeps: failing fast is the observable.
	if d := time.Since(start); d > time.Second {
		t.Fatalf("non-idempotent Load spent %v (retried?)", d)
	}
	if _, err := c.List(); err == nil {
		t.Fatal("List against a closed server succeeded")
	}
}

// TestWaitReadyBacksOff pins that WaitReady returns promptly once the
// server is up and honors its timeout when it never comes up.
func TestWaitReadyBacksOff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}))
	defer ts.Close()
	if err := New(ts.URL).WaitReady(2 * time.Second); err != nil {
		t.Fatalf("WaitReady against a live server: %v", err)
	}
	dead := New("http://127.0.0.1:1") // nothing listens on port 1
	start := time.Now()
	if err := dead.WaitReady(50 * time.Millisecond); err == nil {
		t.Fatal("WaitReady against a dead address succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("WaitReady overshot its timeout: %v", d)
	}
}
