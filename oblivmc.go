// Package oblivmc is a library of data-oblivious parallel algorithms for
// multicores in the binary fork-join model, reproducing "Data Oblivious
// Algorithms for Multicores" (Ramachandran & Shi, SPAA 2021).
//
// The primary primitive is oblivious sorting via oblivious random bin
// assignment (REC-ORBA) and the practical REC-SORT variant; on top of it
// the package offers an oblivious random shuffle, list ranking, Euler-tour
// tree computations, tree contraction (expression evaluation), connected
// components, minimum spanning forest, and an oblivious simulator for
// CRCW PRAM programs.
//
// Every algorithm runs under one of two executors selected by Config.Mode:
//
//   - ModeParallel executes on a work-stealing pool (real multicore);
//   - ModeMetered executes sequentially while measuring the exact work,
//     span (critical-path length), ideal-cache misses and the
//     access-pattern fingerprint that constitutes the adversary's view —
//     the quantities in which all of the paper's bounds are stated.
//
// Obliviousness guarantee: with a fixed Seed, the access pattern of every
// *Oblivious* operation is a deterministic function of the input length
// (never of the input contents); randomized components draw their coins
// from pre-generated tapes derived from Seed. Seed needs no secrecy for
// that guarantee — the trace never depends on the data at any seed. One
// refinement applies to the relational layer's shuffle-then-sort backend
// (SortShuffle, and SortAuto above its crossover): per Theorem 3.2 its
// insecure sorting stage has an access pattern that is input-independent
// in *distribution* over a secret permutation — which is why that backend
// draws its permutations from fresh crypto/rand-keyed ChaCha8 streams,
// independent of Seed, so the guarantee holds (computationally) with no
// requirement on the caller (its traces then differ between runs).
// Config.DeterministicShuffle re-pins those permutations to
// Seed for reproducible traces (tests, benchmarks); doing so keeps the
// guarantee only while the seed value is secret, uniformly random, and
// fresh per run. SortBitonic retains the strict per-seed determinism
// everywhere, with no secrecy requirement at all.
package oblivmc

import (
	"errors"

	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/trace"
)

// Mode selects the executor.
type Mode int

const (
	// ModeParallel runs on the work-stealing pool (default).
	ModeParallel Mode = iota
	// ModeMetered runs sequentially with exact instrumentation.
	ModeMetered
	// ModeSerial runs sequentially without instrumentation (tests,
	// debugging).
	ModeSerial
)

// SortBackend selects the sorting machinery the relational layer (Table,
// Query, GroupTotals) runs its schedule-driven sorts through. The choice —
// like the crossover threshold — is public query shape: backend selection
// is a function of the array length alone, never of the data.
type SortBackend int

const (
	// SortAuto (the default) picks per sort by the public size crossover:
	// keyed bitonic networks below the threshold, the shuffle-then-sort
	// composition (Theorem 3.2: oblivious random permutation, then an
	// insecure sample sort) at or above it, where its O(n log n) work
	// overtakes the networks' O(n log² n).
	SortAuto SortBackend = iota
	// SortBitonic forces the keyed bitonic networks at every size. Its
	// trace is a deterministic function of the public shape alone — the
	// strongest (per-seed) obliviousness guarantee in the module.
	SortBitonic
	// SortShuffle forces the shuffle-then-sort composition at every
	// power-of-two size. Its permutation stage's trace is a fixed function
	// of the length; the insecure stage's trace is input-independent *in
	// distribution* over the secret permutation (the Theorem 3.2
	// guarantee), which is drawn from crypto/rand unless
	// Config.DeterministicShuffle pins it to Seed.
	SortShuffle
)

// Config controls execution.
type Config struct {
	// Mode selects the executor (default ModeParallel).
	Mode Mode
	// Workers is the pool size in ModeParallel (default GOMAXPROCS).
	Workers int
	// CacheM, CacheB enable ideal-cache simulation in ModeMetered
	// (cache size and block size, in elements).
	CacheM, CacheB int
	// Trace enables access-pattern recording in ModeMetered.
	Trace bool
	// Seed drives the reproducible algorithm randomness (tapes, pivots,
	// labels). It needs no secrecy: at every seed the trace of an
	// *Oblivious* operation is a function of the input length alone. The
	// shuffle backend's permutations are deliberately NOT derived from it
	// (see DeterministicShuffle).
	Seed uint64
	// SortBackend selects the relational sort backend (default SortAuto).
	SortBackend SortBackend
	// SortCrossover overrides the SortAuto size threshold
	// (0 = core.DefaultShuffleCrossover).
	SortCrossover int
	// DeterministicShuffle derives the shuffle backend's permutations and
	// tie words from Seed (plus a per-run sort counter) instead of the
	// default fresh crypto/rand secret per sort. This makes the shuffle
	// backend's traces replay across runs — what the trace-fingerprint
	// tests and benchmarks need — but narrows its Theorem 3.2 guarantee:
	// the trace of the composition's insecure stage is input-independent
	// only over a secret, uniformly random, per-run-fresh seed, so a
	// fixed or public Seed lets a trace observer recover the sorted key
	// order. Leave it off outside tests and benchmarks; it has no effect
	// on SortBitonic or on the non-relational operations.
	DeterministicShuffle bool
	// Tuning overrides the paper's default parameters (zero = defaults).
	Tuning Tuning
	// Cancel, when non-nil, arms the run's cooperative cancellation token:
	// tripping it aborts the execution with ErrCanceled at the next
	// public-shape checkpoint. Composite operators (PageRank, the staged
	// query path) pass the config through, so one token covers all their
	// constituent runs. An untripped token leaves every trace
	// byte-identical to a run with no token. Use a fresh token per run.
	Cancel *Cancel
}

// Tuning exposes the paper's tunables (see internal/core.Params).
type Tuning struct {
	// Z is the ORBA bin capacity (power of two; default ~log² n).
	Z int
	// Gamma is the butterfly branching factor (power of two; default
	// ~log n; 2 reproduces the prior work ablation).
	Gamma int
	// SampleRate, PivotSpacing, BinCapFactor tune REC-SORT (§E.2).
	SampleRate, PivotSpacing, BinCapFactor int
}

func (t Tuning) params() core.Params {
	return core.Params{
		Z: t.Z, Gamma: t.Gamma,
		SampleRate: t.SampleRate, PivotSpacing: t.PivotSpacing,
		BinCapFactor: t.BinCapFactor,
	}
}

// Report carries the metrics of a metered run; nil in other modes.
type Report struct {
	// Work is the total operation count.
	Work int64
	// Span is the critical-path length of the computation DAG.
	Span int64
	// MemOps, Reads, Writes count instrumented memory operations.
	MemOps, Reads, Writes int64
	// Forks counts binary forks.
	Forks int64
	// CacheMisses / CacheAccesses are ideal-cache statistics (when
	// enabled).
	CacheMisses, CacheAccesses int64
	// TraceFingerprint summarizes the adversary's view (when enabled).
	TraceFingerprint trace.Fingerprint
}

func reportOf(m *forkjoin.Metrics) *Report {
	if m == nil {
		return nil
	}
	return &Report{
		Work: m.Work, Span: m.Span,
		MemOps: m.MemOps, Reads: m.Reads, Writes: m.Writes,
		Forks:       m.Forks,
		CacheMisses: m.CacheMisses, CacheAccesses: m.CacheAccesses,
		TraceFingerprint: m.Trace,
	}
}

// run executes fn under the configured executor with one-shot resources
// (fresh address space, per-call pool). Session holds the persistent
// variant; see exec in session.go. A tripped Config.Cancel surfaces as
// ErrCanceled; a panic out of the computation as *PanicError (ErrInternal).
func run(cfg Config, fn func(c *forkjoin.Ctx, sp *mem.Space)) (*Report, error) {
	return exec{cfg: cfg}.run(fn)
}

// ErrEmptyInput is returned for empty inputs where a result is undefined.
var ErrEmptyInput = errors.New("oblivmc: empty input")
