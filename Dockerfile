# oblivserve container image: multi-stage build producing a static
# binary on a minimal base. Build with `make docker` (or
# `docker build -t oblivserve .`), run with
#
#   docker run -p 8344:8344 oblivserve
#
# then load and query from the host:
#
#   oblivserve load  -addr http://localhost:8344 -name sales -rows 4096
#   oblivserve query -addr http://localhost:8344 -table sales -agg sum

FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/oblivserve ./cmd/oblivserve

FROM alpine:3.20
RUN adduser -D -u 10001 oblivserve
USER oblivserve
COPY --from=build /out/oblivserve /usr/local/bin/oblivserve
EXPOSE 8344
ENTRYPOINT ["oblivserve"]
CMD ["serve", "-addr", ":8344"]
