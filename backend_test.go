package oblivmc

// Public-surface tests for the sort-backend configuration and the
// wide-predicate filter forms added alongside the shuffle-then-sort
// backend.

import (
	"strings"
	"testing"

	"oblivmc/internal/prng"
)

// TestSortBackendsAgree runs the same queries under every backend setting
// (bitonic, forced shuffle, auto with a crossover the table straddles) and
// requires identical results — the public half of the backend-equivalence
// property.
func TestSortBackendsAgree(t *testing.T) {
	src := prng.New(77)
	rows := make([]Row, 3000) // pads to 4096 slots
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(40), Val: src.Uint64n(1 << 20)}
	}
	tab := mustTable(t, rows)
	q := Query{
		Filter:   func(r Row) bool { return r.Val%5 != 0 },
		Distinct: true,
		GroupBy:  AggSum,
		TopK:     7,
	}
	cfgs := []Config{
		{Mode: ModeSerial, Seed: 3, SortBackend: SortBitonic},
		{Mode: ModeSerial, Seed: 3, SortBackend: SortShuffle}, // default seeding: fresh crypto/rand coins per sort
		{Mode: ModeSerial, Seed: 3, SortBackend: SortAuto, SortCrossover: 1024},
		{Mode: ModeSerial, Seed: 9, SortBackend: SortShuffle},                             // different Seed must not change results
		{Mode: ModeSerial, Seed: 9, SortBackend: SortShuffle, DeterministicShuffle: true}, // nor the seed-pinned trace mode
	}
	var ref Table
	for i, cfg := range cfgs {
		got, _, err := RunQuery(cfg, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = got
			continue
		}
		if len(got.Rows()) != len(ref.Rows()) {
			t.Fatalf("config %d: %d rows, want %d", i, len(got.Rows()), len(ref.Rows()))
		}
		for j := range ref.Rows() {
			if got.Rows()[j] != ref.Rows()[j] {
				t.Fatalf("config %d: row %d = %v, want %v", i, j, got.Rows()[j], ref.Rows()[j])
			}
		}
	}
}

// TestFilterRowsWide drives the wide-predicate Filter surface over a
// two-column table against a plain reference, and checks the width-1 form
// agrees with the narrow Filter.
func TestFilterRowsWide(t *testing.T) {
	rows := wideQueryRows(120)
	tab := mustWideTable(t, rows)
	pred := func(r WideRow) bool { return r.Keys[1] != 0 && r.Val%2 == 0 }
	got, _, err := FilterRows(Config{Mode: ModeSerial}, tab, pred)
	if err != nil {
		t.Fatal(err)
	}
	var want []WideRow
	for _, r := range rows {
		if pred(r) {
			want = append(want, r)
		}
	}
	checkWideRows(t, got.WideRows(), want, "FilterRows wide")

	// Width-1 FilterRows ≡ Filter.
	narrow := mustTable(t, []Row{{1, 10}, {2, 25}, {3, 30}, {4, 45}})
	viaWide, _, err := FilterRows(Config{Mode: ModeSerial}, narrow, func(r WideRow) bool { return r.Val%10 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	viaNarrow, _, err := Filter(Config{Mode: ModeSerial}, narrow, func(r Row) bool { return r.Val%10 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(viaWide.Rows()) != len(viaNarrow.Rows()) {
		t.Fatalf("wide/narrow filter disagree: %v vs %v", viaWide.Rows(), viaNarrow.Rows())
	}
	for i := range viaNarrow.Rows() {
		if viaWide.Rows()[i] != viaNarrow.Rows()[i] {
			t.Fatalf("wide/narrow filter disagree at %d", i)
		}
	}
}

// TestQueryFilterWide runs a filtered wide-table pipeline end to end — the
// public surface the ROADMAP's "wide filters" follow-on called for — in
// both planned and staged form, including the key-only pushdown
// declaration.
func TestQueryFilterWide(t *testing.T) {
	rows := wideQueryRows(150)
	tab := mustWideTable(t, rows)
	pred := func(r WideRow) bool { return r.Keys[0] != 0 }
	for _, keyOnly := range []bool{false, true} {
		q := Query{FilterWide: pred, FilterKeyOnly: keyOnly, GroupBy: AggSum}
		// Reference: filter then group in first-occurrence order.
		var kept []WideRow
		for _, r := range rows {
			if pred(r) {
				kept = append(kept, r)
			}
		}
		want := refGroupByCols(kept, AggSum)

		got, _, err := RunQuery(Config{Mode: ModeSerial}, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		checkWideRows(t, got.WideRows(), want, "Query.FilterWide planned")

		q.NoOptimize = true
		staged, _, err := RunQuery(Config{Mode: ModeSerial}, tab, q)
		if err != nil {
			t.Fatal(err)
		}
		checkWideRows(t, staged.WideRows(), want, "Query.FilterWide staged")
	}

	// The wide filter participates in planning like the narrow one.
	pl, err := ExplainWidth(Query{FilterWide: pred, FilterKeyOnly: true, Distinct: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl, "filter") {
		t.Fatalf("wide filter missing from plan: %s", pl)
	}

	// Narrow Filter on wide tables stays rejected; both forms at once are
	// rejected; FilterWide works where Filter is refused.
	if _, _, err := RunQuery(Config{Mode: ModeSerial}, tab, Query{Filter: func(Row) bool { return true }}); err == nil {
		t.Fatal("narrow Filter over a wide table should be rejected")
	}
	if _, _, err := RunQuery(Config{Mode: ModeSerial}, tab, Query{
		Filter:     func(Row) bool { return true },
		FilterWide: pred,
	}); err == nil {
		t.Fatal("Filter and FilterWide together should be rejected")
	}
	// Explain shares RunQuery's shape validation, so it refuses the same
	// combination rather than blessing a plan the executor rejects.
	if _, err := Explain(Query{
		Filter:     func(Row) bool { return true },
		FilterWide: pred,
	}); err == nil {
		t.Fatal("Explain should reject Filter and FilterWide together")
	}
}

// TestDeterministicShuffleTraceModes pins the Config plumbing of the
// shuffle backend's two seeding modes: with DeterministicShuffle the
// metered trace replays across runs at a fixed Seed (what the fingerprint
// harness and benchmarks rely on), while the default draws a fresh secret
// permutation per run, so two runs of the identical query present
// different views.
func TestDeterministicShuffleTraceModes(t *testing.T) {
	src := prng.New(5)
	rows := make([]Row, 512)
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(9), Val: src.Uint64n(1 << 16)}
	}
	tab := mustTable(t, rows)
	run := func(cfg Config) *Report {
		cfg.Mode = ModeMetered
		cfg.Trace = true
		_, rep, err := GroupBy(cfg, tab, AggSum)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	det := Config{Seed: 11, SortBackend: SortShuffle, DeterministicShuffle: true}
	if !run(det).TraceFingerprint.Equal(run(det).TraceFingerprint) {
		t.Fatal("DeterministicShuffle runs at one Seed must replay the identical trace")
	}
	secret := Config{Seed: 11, SortBackend: SortShuffle}
	if run(secret).TraceFingerprint.Equal(run(secret).TraceFingerprint) {
		t.Fatal("default shuffle runs replayed an identical trace — permutations must be fresh secrets")
	}
}
