package oblivmc

import (
	"fmt"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/plan"
	"oblivmc/internal/relops"
)

// Typed boundary errors of the Table API. They wrap the corresponding
// internal/relops errors, so errors.Is matches across both layers.
var (
	// ErrKeyTooLarge is returned for a row key >= 2^40 (composite sort
	// keys must stay below 2^62; see internal/relops).
	ErrKeyTooLarge = fmt.Errorf("oblivmc: row key exceeds 2^40-1: %w", relops.ErrKeyTooLarge)
	// ErrTooManyRows is returned for a table of more than 2^20 rows.
	ErrTooManyRows = fmt.Errorf("oblivmc: table exceeds 2^20 rows: %w", relops.ErrTooManyRows)
)

// Row is one (key, value) record of a Table.
type Row struct {
	Key, Val uint64
}

// Table is a relation of rows accepted by the oblivious relational
// operators (Filter, Distinct, GroupBy, Join, TopK, RunQuery). Keys may
// repeat. Construct with NewTable, which validates the bounds: keys
// < 2^40 and at most 2^20 rows (composite sort keys must fit below 2^62;
// see internal/relops).
type Table struct {
	rows []Row
}

// NewTable validates rows and wraps them in a Table. Violations of the
// bounds return ErrKeyTooLarge / ErrTooManyRows (matchable with errors.Is).
func NewTable(rows []Row) (Table, error) {
	if len(rows) == 0 {
		return Table{}, ErrEmptyInput
	}
	if len(rows) > relops.MaxRows {
		return Table{}, fmt.Errorf("%w (%d rows)", ErrTooManyRows, len(rows))
	}
	for i, r := range rows {
		if r.Key >= relops.KeyLimit {
			return Table{}, fmt.Errorf("%w (row %d key %d)", ErrKeyTooLarge, i, r.Key)
		}
	}
	return Table{rows: rows}, nil
}

// Rows returns the table's rows.
func (t Table) Rows() []Row { return t.rows }

// Len returns the number of rows.
func (t Table) Len() int { return len(t.rows) }

// Agg selects the aggregation of GroupBy / Query. The zero value AggNone
// is only meaningful inside a Query (it disables the group-by stage).
type Agg int

// Aggregations.
const (
	AggNone Agg = iota
	AggSum
	AggCount
	AggMin
	AggMax
)

func (a Agg) kind() (relops.AggKind, error) {
	switch a {
	case AggSum:
		return relops.AggSum, nil
	case AggCount:
		return relops.AggCount, nil
	case AggMin:
		return relops.AggMin, nil
	case AggMax:
		return relops.AggMax, nil
	default:
		return 0, fmt.Errorf("oblivmc: invalid aggregation %d", a)
	}
}

// runTableOp moves a table into the oblivious element representation and
// runs body on it under cfg's executor with a per-run scratch arena,
// returning the surviving rows.
func runTableOp(cfg Config, t Table, body func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, a *mem.Array[obliv.Elem], srt obliv.Sorter)) (Table, *Report, error) {
	var out []Row
	var loadErr error
	rep := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		a, err := relops.Load(sp, recordsOf(t.rows))
		if err != nil {
			loadErr = err
			return
		}
		body(c, sp, relops.NewArena(), a, bitonic.CacheAgnostic{})
		out = rowsOf(a)
	})
	if loadErr != nil {
		// Unreachable via NewTable, but Load re-checks its own bounds.
		return Table{}, nil, loadErr
	}
	return Table{rows: out}, rep, nil
}

// rowsOf converts surviving records back to rows (harness operation,
// outside the adversary's view).
func rowsOf(a *mem.Array[obliv.Elem]) []Row {
	recs := relops.Unload(a)
	rows := make([]Row, len(recs))
	for i, r := range recs {
		rows[i] = Row(r)
	}
	return rows
}

// Filter obliviously selects the rows satisfying pred, preserving input
// order. pred must be a pure function of the row (it computes on register
// values; it is never handed memory). The access pattern depends only on
// the number of rows — not on the contents, and not on how many rows
// survive (the survivor count is only visible in the returned Table).
func Filter(cfg Config, t Table, pred func(Row) bool) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	return runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, a *mem.Array[obliv.Elem], srt obliv.Sorter) {
		relops.Compact(c, sp, ar, a, func(r relops.Record) bool { return pred(Row(r)) }, srt)
	})
}

// Distinct obliviously deduplicates the table by key: the earliest row of
// each key survives, in first-occurrence order.
func Distinct(cfg Config, t Table) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	return runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, a *mem.Array[obliv.Elem], srt obliv.Sorter) {
		relops.Distinct(c, sp, ar, a, srt)
	})
}

// GroupBy obliviously aggregates the table by key: the result holds one
// row per distinct key whose Val is the aggregate of the group under agg,
// in first-occurrence order. Values are unbounded uint64s and sums wrap
// modulo 2^64; keep values below 2^44 if exact sums over a full 2^20-row
// table are required.
func GroupBy(cfg Config, t Table, agg Agg) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	kind, err := agg.kind()
	if err != nil {
		return Table{}, nil, err
	}
	return runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, a *mem.Array[obliv.Elem], srt obliv.Sorter) {
		relops.GroupBy(c, sp, ar, a, kind, srt)
	})
}

// TopK obliviously keeps the k rows with the largest values, in descending
// value order (ties broken deterministically but arbitrarily). k is public
// query shape, not data; the access pattern depends on (rows, k) only.
func TopK(cfg Config, t Table, k int) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	if k < 0 {
		return Table{}, nil, fmt.Errorf("oblivmc: negative k %d", k)
	}
	return runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, a *mem.Array[obliv.Elem], srt obliv.Sorter) {
		relops.TopK(c, sp, ar, a, k, srt)
	})
}

// JoinedRow is one output row of Join: a right row paired with the value
// of the left row sharing its key.
type JoinedRow struct {
	Key, LeftVal, RightVal uint64
}

// Join obliviously computes the sort-merge equi-join of left (a primary
// relation with distinct keys) and right (a foreign relation): one output
// row per right row whose key appears in left, in right's order. The
// access pattern depends only on the two relation sizes — the join
// selectivity is invisible to the adversary.
func Join(cfg Config, left, right Table) ([]JoinedRow, *Report, error) {
	if left.Len() == 0 || right.Len() == 0 {
		return nil, nil, ErrEmptyInput
	}
	seen := map[uint64]bool{}
	for i, r := range left.rows {
		if seen[r.Key] {
			return nil, nil, fmt.Errorf("oblivmc: left table key %d (row %d) is duplicated", r.Key, i)
		}
		seen[r.Key] = true
	}
	var out []JoinedRow
	var loadErr error
	rep := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		l, err := relops.Load(sp, recordsOf(left.rows))
		if err != nil {
			loadErr = err
			return
		}
		r, err := relops.Load(sp, recordsOf(right.rows))
		if err != nil {
			loadErr = err
			return
		}
		j, _ := relops.Join(c, sp, relops.NewArena(), l, r, bitonic.CacheAgnostic{})
		for _, rec := range relops.UnloadJoined(j) {
			out = append(out, JoinedRow(rec))
		}
	})
	if loadErr != nil {
		return nil, nil, loadErr
	}
	return out, rep, nil
}

func recordsOf(rows []Row) []relops.Record {
	recs := make([]relops.Record, len(rows))
	for i, r := range rows {
		recs[i] = relops.Record(r)
	}
	return recs
}

// Query is a declarative oblivious analytics pipeline over one table:
//
//	Filter (optional) → Distinct (optional) → GroupBy (optional) → TopK (optional)
//
// The query structure (which stages run, the aggregation, k, the declared
// key-only-ness of the filter) is public; the table contents, including how
// many rows survive each stage, are not: every stage processes the full
// padded array, so the trace depends only on the table's row count and the
// query shape.
//
// RunQuery compiles the stages through the internal/plan sort-fusion
// planner before executing: stages that only drop rows defer their
// compaction to the next sort, adjacent stages needing the same key order
// share one sorting pass, and a filter declared FilterKeyOnly is pushed
// below Distinct/GroupBy into their existing passes. A multi-stage query
// therefore runs strictly fewer O(n log² n) sorting-network passes than
// calling the stand-alone operators in sequence (the full four-stage
// pipeline: 2 sorts instead of 6) while producing the same rows.
type Query struct {
	// Filter keeps the rows satisfying the predicate (nil = keep all).
	Filter func(Row) bool
	// FilterKeyOnly declares that Filter depends only on Row.Key. This is
	// public query shape: it allows the planner to push the filter below
	// Distinct/GroupBy (a key-only predicate drops whole key groups, so
	// dedup heads and group aggregates are unchanged by the reorder). A
	// predicate that reads Row.Val despite this declaration yields
	// unspecified results — though still an oblivious trace.
	FilterKeyOnly bool
	// Distinct deduplicates by key before aggregation.
	Distinct bool
	// GroupBy aggregates values per key (AggNone = no aggregation).
	GroupBy Agg
	// TopK keeps only the k largest-value rows (0 = keep all).
	TopK int
	// NoOptimize executes the stages one stand-alone operator at a time,
	// bypassing the planner — the pre-fusion baseline kept for A/B
	// benchmarking and differential testing.
	NoOptimize bool
}

// shape extracts the public planner shape of q.
func (q Query) shape(kind relops.AggKind) plan.Shape {
	return plan.Shape{
		Filter:        q.Filter != nil,
		FilterKeyOnly: q.FilterKeyOnly,
		Distinct:      q.Distinct,
		GroupBy:       q.GroupBy != AggNone,
		Agg:           uint8(kind),
		TopK:          q.TopK,
	}
}

// Explain returns the pass sequence q will execute, e.g.
// "filter-mark → sort(key,pos) → dedup+aggregate → sort(val↓) → topk
// [2 sorts, staged 6]" — or, for a NoOptimize query, the staged operator
// sequence. It validates q exactly like RunQuery and depends only on the
// query shape.
func Explain(q Query) (string, error) {
	kind, err := queryAgg(q)
	if err != nil {
		return "", err
	}
	pl := plan.Build(q.shape(kind))
	if !q.NoOptimize {
		return pl.String(), nil
	}
	s := ""
	for _, st := range []struct {
		on   bool
		name string
	}{
		{q.Filter != nil, "filter"},
		{q.Distinct, "distinct"},
		{q.GroupBy != AggNone, "group-by"},
		{q.TopK > 0, "top-k"},
	} {
		if !st.on {
			continue
		}
		if s != "" {
			s += " → "
		}
		s += st.name
	}
	if s == "" {
		s = "identity"
	}
	return fmt.Sprintf("staged: %s [%d sorts]", s, pl.StagedSortPasses), nil
}

// queryAgg validates q's shape parameters (shared by RunQuery and Explain)
// and resolves the aggregation kind.
func queryAgg(q Query) (relops.AggKind, error) {
	if q.TopK < 0 {
		return 0, fmt.Errorf("oblivmc: negative k %d", q.TopK)
	}
	if q.GroupBy == AggNone {
		return 0, nil
	}
	return q.GroupBy.kind()
}

// RunQuery executes q over t under one executor run, so a metered Config
// yields a single Report covering the whole pipeline.
func RunQuery(cfg Config, t Table, q Query) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	kind, err := queryAgg(q)
	if err != nil {
		return Table{}, nil, err
	}
	if q.NoOptimize {
		return runQueryStaged(cfg, t, q, kind, bitonic.CacheAgnostic{})
	}
	return runQueryPlanned(cfg, t, q, kind, bitonic.CacheAgnostic{})
}

// runQueryPlanned compiles q's shape and executes the fused pass sequence.
func runQueryPlanned(cfg Config, t Table, q Query, kind relops.AggKind, srt obliv.Sorter) (Table, *Report, error) {
	pl := plan.Build(q.shape(kind))
	var pred func(relops.Record) bool
	if q.Filter != nil {
		pred = func(r relops.Record) bool { return q.Filter(Row(r)) }
	}
	return runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, a *mem.Array[obliv.Elem], _ obliv.Sorter) {
		relops.Execute(c, sp, ar, a, pl, pred, srt)
	})
}

// runQueryStaged is the pre-planner execution: each stage is a stand-alone
// operator paying its own sorts, with per-call scratch and closure-keyed
// comparators — the seed behavior, kept as the benchmarking baseline.
func runQueryStaged(cfg Config, t Table, q Query, kind relops.AggKind, srt obliv.Sorter) (Table, *Report, error) {
	return runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, _ *relops.Arena, a *mem.Array[obliv.Elem], _ obliv.Sorter) {
		if q.Filter != nil {
			relops.Compact(c, sp, nil, a, func(r relops.Record) bool { return q.Filter(Row(r)) }, srt)
		}
		if q.Distinct {
			relops.Distinct(c, sp, nil, a, srt)
		}
		if q.GroupBy != AggNone {
			relops.GroupBy(c, sp, nil, a, kind, srt)
		}
		if q.TopK > 0 {
			relops.TopK(c, sp, nil, a, q.TopK, srt)
		}
	})
}
