package oblivmc

import (
	"fmt"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/relops"
)

// Row is one (key, value) record of a Table.
type Row struct {
	Key, Val uint64
}

// Table is a relation of rows accepted by the oblivious relational
// operators (Filter, Distinct, GroupBy, Join, TopK, RunQuery). Keys may
// repeat. Construct with NewTable, which validates the bounds: keys
// < 2^40 and at most 2^20 rows (composite sort keys must fit below 2^62;
// see internal/relops).
type Table struct {
	rows []Row
}

// NewTable validates rows and wraps them in a Table.
func NewTable(rows []Row) (Table, error) {
	if len(rows) == 0 {
		return Table{}, ErrEmptyInput
	}
	if len(rows) > relops.MaxRows {
		return Table{}, fmt.Errorf("oblivmc: table has %d rows, limit %d", len(rows), relops.MaxRows)
	}
	for i, r := range rows {
		if r.Key >= relops.KeyLimit {
			return Table{}, fmt.Errorf("oblivmc: row %d key %d exceeds 2^40-1", i, r.Key)
		}
	}
	return Table{rows: rows}, nil
}

// Rows returns the table's rows.
func (t Table) Rows() []Row { return t.rows }

// Len returns the number of rows.
func (t Table) Len() int { return len(t.rows) }

// Agg selects the aggregation of GroupBy / Query. The zero value AggNone
// is only meaningful inside a Query (it disables the group-by stage).
type Agg int

// Aggregations.
const (
	AggNone Agg = iota
	AggSum
	AggCount
	AggMin
	AggMax
)

func (a Agg) kind() (relops.AggKind, error) {
	switch a {
	case AggSum:
		return relops.AggSum, nil
	case AggCount:
		return relops.AggCount, nil
	case AggMin:
		return relops.AggMin, nil
	case AggMax:
		return relops.AggMax, nil
	default:
		return 0, fmt.Errorf("oblivmc: invalid aggregation %d", a)
	}
}

// runTableOp moves a table into the oblivious element representation and
// runs body on it under cfg's executor, returning the surviving rows.
func runTableOp(cfg Config, t Table, body func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], srt obliv.Sorter)) (Table, *Report) {
	var out []Row
	rep := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		a := relops.Load(sp, recordsOf(t.rows))
		body(c, sp, a, bitonic.CacheAgnostic{})
		out = rowsOf(a)
	})
	return Table{rows: out}, rep
}

// rowsOf converts surviving records back to rows (harness operation,
// outside the adversary's view).
func rowsOf(a *mem.Array[obliv.Elem]) []Row {
	recs := relops.Unload(a)
	rows := make([]Row, len(recs))
	for i, r := range recs {
		rows[i] = Row{Key: r.Key, Val: r.Val}
	}
	return rows
}

// Filter obliviously selects the rows satisfying pred, preserving input
// order. pred must be a pure function of the row (it computes on register
// values; it is never handed memory). The access pattern depends only on
// the number of rows — not on the contents, and not on how many rows
// survive (the survivor count is only visible in the returned Table).
func Filter(cfg Config, t Table, pred func(Row) bool) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	out, rep := runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], srt obliv.Sorter) {
		relops.Compact(c, sp, a, func(r relops.Record) bool { return pred(Row(r)) }, srt)
	})
	return out, rep, nil
}

// Distinct obliviously deduplicates the table by key: the earliest row of
// each key survives, in first-occurrence order.
func Distinct(cfg Config, t Table) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	out, rep := runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], srt obliv.Sorter) {
		relops.Distinct(c, sp, a, srt)
	})
	return out, rep, nil
}

// GroupBy obliviously aggregates the table by key: the result holds one
// row per distinct key whose Val is the aggregate of the group under agg,
// in first-occurrence order. Values are unbounded uint64s and sums wrap
// modulo 2^64; keep values below 2^44 if exact sums over a full 2^20-row
// table are required.
func GroupBy(cfg Config, t Table, agg Agg) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	kind, err := agg.kind()
	if err != nil {
		return Table{}, nil, err
	}
	out, rep := runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], srt obliv.Sorter) {
		relops.GroupBy(c, sp, a, kind, srt)
	})
	return out, rep, nil
}

// TopK obliviously keeps the k rows with the largest values, in descending
// value order (ties broken deterministically but arbitrarily). k is public
// query shape, not data; the access pattern depends on (rows, k) only.
func TopK(cfg Config, t Table, k int) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	if k < 0 {
		return Table{}, nil, fmt.Errorf("oblivmc: negative k %d", k)
	}
	out, rep := runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], srt obliv.Sorter) {
		relops.TopK(c, sp, a, k, srt)
	})
	return out, rep, nil
}

// JoinedRow is one output row of Join: a right row paired with the value
// of the left row sharing its key.
type JoinedRow struct {
	Key, LeftVal, RightVal uint64
}

// Join obliviously computes the sort-merge equi-join of left (a primary
// relation with distinct keys) and right (a foreign relation): one output
// row per right row whose key appears in left, in right's order. The
// access pattern depends only on the two relation sizes — the join
// selectivity is invisible to the adversary.
func Join(cfg Config, left, right Table) ([]JoinedRow, *Report, error) {
	if left.Len() == 0 || right.Len() == 0 {
		return nil, nil, ErrEmptyInput
	}
	seen := map[uint64]bool{}
	for i, r := range left.rows {
		if seen[r.Key] {
			return nil, nil, fmt.Errorf("oblivmc: left table key %d (row %d) is duplicated", r.Key, i)
		}
		seen[r.Key] = true
	}
	var out []JoinedRow
	rep := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		l := relops.Load(sp, recordsOf(left.rows))
		r := relops.Load(sp, recordsOf(right.rows))
		j, _ := relops.Join(c, sp, l, r, bitonic.CacheAgnostic{})
		for _, rec := range relops.UnloadJoined(j) {
			out = append(out, JoinedRow(rec))
		}
	})
	return out, rep, nil
}

func recordsOf(rows []Row) []relops.Record {
	recs := make([]relops.Record, len(rows))
	for i, r := range rows {
		recs[i] = relops.Record(r)
	}
	return recs
}

// Query is a declarative oblivious analytics pipeline over one table,
// executed stage by stage on a single fixed-size oblivious array:
//
//	Filter (optional) → Distinct (optional) → GroupBy (optional) → TopK (optional)
//
// The query structure (which stages run, the aggregation, k) is public;
// the table contents, including how many rows survive each stage, are not:
// every stage processes the full padded array, so the trace depends only
// on the table's row count and the query shape.
type Query struct {
	// Filter keeps the rows satisfying the predicate (nil = keep all).
	Filter func(Row) bool
	// Distinct deduplicates by key before aggregation.
	Distinct bool
	// GroupBy aggregates values per key (AggNone = no aggregation).
	GroupBy Agg
	// TopK keeps only the k largest-value rows (0 = keep all).
	TopK int
}

// RunQuery executes q over t under one executor run, so a metered Config
// yields a single Report covering the whole pipeline.
func RunQuery(cfg Config, t Table, q Query) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	var kind relops.AggKind
	if q.GroupBy != AggNone {
		var err error
		if kind, err = q.GroupBy.kind(); err != nil {
			return Table{}, nil, err
		}
	}
	if q.TopK < 0 {
		return Table{}, nil, fmt.Errorf("oblivmc: negative k %d", q.TopK)
	}
	out, rep := runTableOp(cfg, t, func(c *forkjoin.Ctx, sp *mem.Space, a *mem.Array[obliv.Elem], srt obliv.Sorter) {
		if q.Filter != nil {
			relops.Compact(c, sp, a, func(r relops.Record) bool { return q.Filter(Row(r)) }, srt)
		}
		if q.Distinct {
			relops.Distinct(c, sp, a, srt)
		}
		if q.GroupBy != AggNone {
			relops.GroupBy(c, sp, a, kind, srt)
		}
		if q.TopK > 0 {
			relops.TopK(c, sp, a, q.TopK, srt)
		}
	})
	return out, rep, nil
}
