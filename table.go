package oblivmc

import (
	"errors"
	"fmt"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/plan"
	"oblivmc/internal/relops"
)

// relSorter resolves cfg's relational sort backend to a fresh scheduled
// sorter for one run. The shuffle backend is stateful (its sort counter
// and scratch cache), so exactly one instance must exist per run:
// construct it once at an operator entry point (Filter/Distinct/GroupBy/
// TopK/RunQuery, the join surfaces, GroupTotals) and thread it through
// runTableOp to the stages — never construct per stage. Selection — and,
// for SortAuto, the per-sort size crossover inside the shuffle sorter —
// is a function of public shape only.
func relSorter(cfg Config) obliv.ScheduledSorter {
	switch cfg.SortBackend {
	case SortBitonic:
		return bitonic.CacheAgnostic{}
	case SortShuffle:
		return &core.ShuffleSorter{FixedSeed: shuffleSeed(cfg), Crossover: 2}
	default:
		return &core.ShuffleSorter{FixedSeed: shuffleSeed(cfg), Crossover: cfg.SortCrossover}
	}
}

// shuffleSeed resolves the shuffle backend's seeding mode: nil — a fresh
// crypto/rand secret per sort, the mode the Theorem 3.2 guarantee assumes
// — unless cfg opts into Seed-derived reproducible traces.
func shuffleSeed(cfg Config) *uint64 {
	if !cfg.DeterministicShuffle {
		return nil
	}
	s := cfg.Seed
	return &s
}

// Typed boundary errors of the Table API. They wrap the corresponding
// internal/relops errors, so errors.Is matches across both layers, and
// their messages are derived from the active relops constants so they can
// never drift from the enforced bounds.
var (
	// ErrKeyTooLarge is returned for a row key column >= relops.KeyLimit
	// (the filler sentinel; every value below it is a legal key).
	ErrKeyTooLarge = fmt.Errorf("oblivmc: row key column exceeds max key %d: %w",
		uint64(relops.KeyLimit-1), relops.ErrKeyTooLarge)
	// ErrTooManyRows is returned for a table of more than relops.MaxRows
	// rows.
	ErrTooManyRows = fmt.Errorf("oblivmc: table exceeds %d rows: %w",
		uint64(relops.MaxRows), relops.ErrTooManyRows)
	// ErrBadWidth is returned for a key-column count outside
	// [1, relops.MaxKeyCols] or rows of unequal widths.
	ErrBadWidth = fmt.Errorf("oblivmc: key-column count must be in [1, %d] and uniform: %w",
		relops.MaxKeyCols, relops.ErrBadWidth)
	// ErrBadCapacity is returned for a join output capacity (maxOut)
	// outside [1, relops.MaxRows].
	ErrBadCapacity = fmt.Errorf("oblivmc: join output capacity must be in [1, %d] rows: %w",
		uint64(relops.MaxRows), relops.ErrBadCapacity)
	// ErrJoinOverflow is returned when a join's true match count exceeds
	// the declared public output capacity; the wrapped message carries the
	// count a retry needs.
	ErrJoinOverflow = fmt.Errorf("oblivmc: join match count exceeds the declared output capacity: %w",
		relops.ErrJoinOverflow)
	// ErrCapTooLarge is returned by a JoinCapAuto join whose advised
	// worst-case bound exceeds relops.MaxRows: no legal capacity can hold
	// the result, so the inputs must shrink rather than the capacity grow.
	ErrCapTooLarge = fmt.Errorf("oblivmc: advised join capacity exceeds %d rows: %w",
		uint64(relops.MaxRows), relops.ErrCapTooLarge)
)

// JoinCapAuto, passed as a join's maxOut (JoinSpec.MaxOut or JoinAllRows),
// asks the engine to size the output with the capacity advisor
// (relops.JoinCapAdvise): the worst-case match bound Σ over key groups of
// |left group|·|right group|, computed obliviously inside the same run (one
// extra sorting pass) and then used as the public capacity — so the join
// can never overflow and the guess-retry loop disappears. The advised
// bound becomes public shape exactly like a hand-picked maxOut: callers
// opt into revealing the worst-case match bound, never the true count.
const JoinCapAuto = -1

// Row is one single-key-column (key, value) record of a Table.
type Row struct {
	Key, Val uint64
}

// WideRow is one multi-column (keys..., value) record of a Table. Keys
// holds the key columns in significance order (column 0 sorts first); all
// rows of a table must declare the same number of columns.
type WideRow struct {
	Keys []uint64
	Val  uint64
}

// TableOrder is the public "sorted-by" token a Table carries across
// queries — the cross-query planning seam. Tables built by NewTable /
// NewWideTable carry OrderNone; tables returned by RunQuery (and
// Session.RunQuery) carry the token of their plan's output order. The
// token is a pure function of the producing query's public shape, never of
// the table contents, so feeding it into the next query's plan (which
// RunQuery does automatically) keeps every trace a function of public
// query shapes only.
type TableOrder int

const (
	// OrderNone — no known order (fresh loads, staged executions).
	OrderNone TableOrder = iota
	// OrderKeys — ascending (key tuple, first-occurrence) order: the
	// output of a KeyOrderOut Distinct/GroupBy query. A follow-up query
	// whose first sort is its key sort skips that sort entirely.
	OrderKeys
	// OrderValues — descending value order: the output of a TopK query. A
	// follow-up pure-TopK query skips its value sort.
	OrderValues
)

// String implements fmt.Stringer.
func (o TableOrder) String() string {
	switch o {
	case OrderKeys:
		return "keys"
	case OrderValues:
		return "values↓"
	}
	return "none"
}

// planOrderOf maps the public token to the planner's input-order token.
func planOrderOf(o TableOrder) plan.Order {
	switch o {
	case OrderKeys:
		return plan.OrderKeyPos
	case OrderValues:
		return plan.OrderValDesc
	}
	return plan.OrderInput
}

// tableOrderOf maps a plan's output order to the public token. OrderPos
// (original-position order) deliberately maps to OrderNone: reloading
// renumbers positions, so the token would carry no cross-query information.
func tableOrderOf(o plan.Order) TableOrder {
	switch o {
	case plan.OrderKeyPos:
		return OrderKeys
	case plan.OrderValDesc:
		return OrderValues
	}
	return OrderNone
}

// Table is a relation of rows accepted by the oblivious relational
// operators (Filter, Distinct, GroupBy, GroupByCols, Join, TopK,
// RunQuery). Key tuples may repeat. Construct with NewTable (one key
// column) or NewWideTable (up to relops.MaxKeyCols columns); both validate
// the bounds: key columns < relops.KeyLimit and at most relops.MaxRows
// rows. The key-column count is public query shape, like the row count,
// as is the sorted-by token (see TableOrder).
type Table struct {
	rows  []Row     // width-1 storage
	wide  []WideRow // width >= 2 storage
	width int
	order TableOrder
}

// Order returns the table's public sorted-by token (OrderNone unless the
// table is a materialized query result carrying one).
func (t Table) Order() TableOrder { return t.order }

// NewTable validates rows and wraps them in a width-1 Table. Violations of
// the bounds return ErrKeyTooLarge / ErrTooManyRows (matchable with
// errors.Is).
func NewTable(rows []Row) (Table, error) {
	if len(rows) == 0 {
		return Table{}, ErrEmptyInput
	}
	if err := relops.CheckShape(int64(len(rows)), 1); err != nil {
		return Table{}, fmt.Errorf("%w (%d rows)", ErrTooManyRows, len(rows))
	}
	for i, r := range rows {
		if r.Key >= relops.KeyLimit {
			return Table{}, fmt.Errorf("%w (row %d key %d)", ErrKeyTooLarge, i, r.Key)
		}
	}
	return Table{rows: rows, width: 1}, nil
}

// NewWideTable validates rows and wraps them in a multi-column Table. All
// rows must carry the same number of key columns, between 1 and
// relops.MaxKeyCols; violations return ErrBadWidth / ErrKeyTooLarge /
// ErrTooManyRows (matchable with errors.Is). A one-column wide table is
// identical to the NewTable form.
func NewWideTable(rows []WideRow) (Table, error) {
	if len(rows) == 0 {
		return Table{}, ErrEmptyInput
	}
	w := len(rows[0].Keys)
	if err := relops.CheckShape(int64(len(rows)), w); err != nil {
		if w < 1 || w > relops.MaxKeyCols {
			return Table{}, fmt.Errorf("%w (%d columns)", ErrBadWidth, w)
		}
		return Table{}, fmt.Errorf("%w (%d rows)", ErrTooManyRows, len(rows))
	}
	for i, r := range rows {
		if len(r.Keys) != w {
			return Table{}, fmt.Errorf("%w (row %d has %d columns, row 0 has %d)", ErrBadWidth, i, len(r.Keys), w)
		}
		for k, key := range r.Keys {
			if key >= relops.KeyLimit {
				return Table{}, fmt.Errorf("%w (row %d column %d key %d)", ErrKeyTooLarge, i, k, key)
			}
		}
	}
	if w == 1 {
		narrow := make([]Row, len(rows))
		for i, r := range rows {
			narrow[i] = Row{Key: r.Keys[0], Val: r.Val}
		}
		return Table{rows: narrow, width: 1}, nil
	}
	return Table{wide: rows, width: w}, nil
}

// Rows returns the rows of a width-1 table (nil for multi-column tables —
// use WideRows).
func (t Table) Rows() []Row { return t.rows }

// WideRows returns the table's rows in multi-column form (synthesized for
// width-1 tables).
func (t Table) WideRows() []WideRow {
	if t.width > 1 {
		return t.wide
	}
	out := make([]WideRow, len(t.rows))
	for i, r := range t.rows {
		out[i] = WideRow{Keys: []uint64{r.Key}, Val: r.Val}
	}
	return out
}

// Width returns the table's key-column count.
func (t Table) Width() int {
	if t.width == 0 {
		return 1
	}
	return t.width
}

// Len returns the number of rows.
func (t Table) Len() int {
	if t.width > 1 {
		return len(t.wide)
	}
	return len(t.rows)
}

// Agg selects the aggregation of GroupBy / GroupByCols / Query. The zero
// value AggNone is only meaningful inside a Query (it disables the
// group-by stage).
type Agg int

// Aggregations. AggAvg and AggVar aggregate a (sum, count) pair — plus the
// sum of squares for the variance — in one segmented pass: AggAvg yields
// floor(sum/count), AggVar the integer population variance
// floor(E[X²]) - floor(E[X])² clamped at zero.
const (
	AggNone Agg = iota
	AggSum
	AggCount
	AggMin
	AggMax
	AggAvg
	AggVar
)

func (a Agg) kind() (relops.AggKind, error) {
	switch a {
	case AggSum:
		return relops.AggSum, nil
	case AggCount:
		return relops.AggCount, nil
	case AggMin:
		return relops.AggMin, nil
	case AggMax:
		return relops.AggMax, nil
	case AggAvg:
		return relops.AggAvg, nil
	case AggVar:
		return relops.AggVar, nil
	default:
		return 0, fmt.Errorf("oblivmc: invalid aggregation %d", a)
	}
}

// runTableOp moves a table into the oblivious element representation and
// runs body on it under e's executor with a scratch arena (e's persistent
// arena when it has one, else per-run) and the run's one sorter (srt — the
// shuffle backend is stateful, so exactly one instance must serve all of a
// run's sorts), returning the surviving rows of the relation body hands
// back (usually r itself; the join stage replaces it with the expanded
// relation) at its width. A body error aborts the run without converting a
// result.
func runTableOp(e exec, t Table, srt obliv.Sorter, body func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, r relops.Rel, srt obliv.Sorter) (relops.Rel, error)) (Table, *Report, error) {
	var out Table
	var runErr error
	rep, err := e.run(func(c *forkjoin.Ctx, sp *mem.Space) {
		r, err := relops.Load(sp, recordsOf(t), t.Width())
		if err != nil {
			// Unreachable via NewTable/NewWideTable, but Load re-checks its
			// own bounds.
			runErr = err
			return
		}
		ar := e.arena
		if ar == nil {
			ar = relops.NewArena()
		}
		if r, err = body(c, sp, ar, r, srt); err != nil {
			runErr = err
			return
		}
		out = tableOf(r)
	})
	if err != nil {
		return Table{}, nil, err
	}
	if runErr != nil {
		return Table{}, nil, runErr
	}
	return out, rep, nil
}

// tableOf converts surviving records back to a table of the relation's
// width (harness operation, outside the adversary's view).
func tableOf(r relops.Rel) Table {
	recs := relops.Unload(r)
	if r.W == 1 {
		rows := make([]Row, len(recs))
		for i, rec := range recs {
			rows[i] = Row{Key: rec.Key, Val: rec.Val}
		}
		return Table{rows: rows, width: 1}
	}
	rows := make([]WideRow, len(recs))
	for i, rec := range recs {
		keys := make([]uint64, r.W)
		for k := 0; k < r.W; k++ {
			keys[k] = rec.Col(k)
		}
		rows[i] = WideRow{Keys: keys, Val: rec.Val}
	}
	return Table{wide: rows, width: r.W}
}

// recordsOf converts a table's rows to relational records.
func recordsOf(t Table) []relops.Record {
	if t.width > 1 {
		recs := make([]relops.Record, len(t.wide))
		for i, r := range t.wide {
			recs[i] = relops.Record{Key: r.Keys[0], Key2: r.Keys[1], Val: r.Val}
		}
		return recs
	}
	recs := make([]relops.Record, len(t.rows))
	for i, r := range t.rows {
		recs[i] = relops.Record{Key: r.Key, Val: r.Val}
	}
	return recs
}

// errWideFilter rejects the narrow row-predicate surfaces on multi-column
// tables, pointing at the wide forms.
func errWideFilter(op string) error {
	return fmt.Errorf("oblivmc: %s over multi-column tables needs the wide-predicate form (FilterRows / Query.FilterWide)", op)
}

// wideRowOf converts a relational record to a WideRow at width w (the
// wide-predicate calling convention; the row is handed to the predicate by
// value and must not be retained).
func wideRowOf(rec relops.Record, w int) WideRow {
	keys := make([]uint64, w)
	for k := 0; k < w; k++ {
		keys[k] = rec.Col(k)
	}
	return WideRow{Keys: keys, Val: rec.Val}
}

// FilterRows obliviously selects the rows satisfying pred at any key
// width, preserving input order — the wide-predicate form of Filter (the
// ROADMAP "wide filters" follow-on). pred must be a pure function of the
// row; the access pattern depends only on the row count and width, never
// on the contents or the survivor count.
func FilterRows(cfg Config, t Table, pred func(WideRow) bool) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	if pred == nil {
		return Table{}, nil, fmt.Errorf("oblivmc: FilterRows requires a predicate")
	}
	w := t.Width()
	return runTableOp(exec{cfg: cfg}, t, relSorter(cfg), func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, r relops.Rel, srt obliv.Sorter) (relops.Rel, error) {
		relops.Compact(c, sp, ar, r, func(rec relops.Record) bool { return pred(wideRowOf(rec, w)) }, srt)
		return r, nil
	})
}

// Filter obliviously selects the rows satisfying pred, preserving input
// order. pred must be a pure function of the row (it computes on register
// values; it is never handed memory). The access pattern depends only on
// the number of rows — not on the contents, and not on how many rows
// survive (the survivor count is only visible in the returned Table).
// Width-1 tables only (see ROADMAP for wide filters).
func Filter(cfg Config, t Table, pred func(Row) bool) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	if t.Width() > 1 {
		return Table{}, nil, errWideFilter("Filter")
	}
	return runTableOp(exec{cfg: cfg}, t, relSorter(cfg), func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, r relops.Rel, srt obliv.Sorter) (relops.Rel, error) {
		relops.Compact(c, sp, ar, r, func(rec relops.Record) bool { return pred(Row{Key: rec.Key, Val: rec.Val}) }, srt)
		return r, nil
	})
}

// Distinct obliviously deduplicates the table by its key tuple: the
// earliest row of each key survives, in first-occurrence order.
func Distinct(cfg Config, t Table) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	return runTableOp(exec{cfg: cfg}, t, relSorter(cfg), func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, r relops.Rel, srt obliv.Sorter) (relops.Rel, error) {
		relops.Distinct(c, sp, ar, r, srt)
		return r, nil
	})
}

// GroupByCols obliviously aggregates the table by its full key tuple —
// GROUP BY (a, b) for a two-column table: the result holds one row per
// distinct key tuple whose Val is the aggregate of the group under agg, in
// first-occurrence order. Values are unbounded uint64s and sums wrap
// modulo 2^64 (AggVar additionally sums squares — keep values below 2^32
// if exact variances are required).
func GroupByCols(cfg Config, t Table, agg Agg) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	kind, err := agg.kind()
	if err != nil {
		return Table{}, nil, err
	}
	return runTableOp(exec{cfg: cfg}, t, relSorter(cfg), func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, r relops.Rel, srt obliv.Sorter) (relops.Rel, error) {
		relops.GroupBy(c, sp, ar, r, kind, srt)
		return r, nil
	})
}

// GroupBy is GroupByCols under its historical name: for width-1 tables the
// key tuple is the single key column, so both names aggregate identically.
func GroupBy(cfg Config, t Table, agg Agg) (Table, *Report, error) {
	return GroupByCols(cfg, t, agg)
}

// TopK obliviously keeps the k rows with the largest values, in descending
// value order (ties broken deterministically but arbitrarily). k is public
// query shape, not data; the access pattern depends on (rows, k) only.
func TopK(cfg Config, t Table, k int) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	if k < 0 {
		return Table{}, nil, fmt.Errorf("oblivmc: negative k %d", k)
	}
	return runTableOp(exec{cfg: cfg}, t, relSorter(cfg), func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, r relops.Rel, srt obliv.Sorter) (relops.Rel, error) {
		relops.TopK(c, sp, ar, r, k, srt)
		return r, nil
	})
}

// JoinedRow is one output row of Join: a right row paired with the value
// of the left row sharing its key.
type JoinedRow struct {
	Key, LeftVal, RightVal uint64
}

// Join obliviously computes the sort-merge equi-join of left (a primary
// relation with distinct keys) and right (a foreign relation): one output
// row per right row whose key appears in left, in right's order. The
// access pattern depends only on the two relation sizes — the join
// selectivity is invisible to the adversary. Width-1 tables only (see
// ROADMAP for wide joins).
func Join(cfg Config, left, right Table) ([]JoinedRow, *Report, error) {
	if left.Len() == 0 || right.Len() == 0 {
		return nil, nil, ErrEmptyInput
	}
	if left.Width() > 1 || right.Width() > 1 {
		return nil, nil, errWideFilter("Join")
	}
	seen := map[uint64]bool{}
	for i, r := range left.rows {
		if seen[r.Key] {
			return nil, nil, fmt.Errorf("oblivmc: left table key %d (row %d) is duplicated", r.Key, i)
		}
		seen[r.Key] = true
	}
	var out []JoinedRow
	var loadErr error
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		l, err := relops.Load(sp, recordsOf(left), 1)
		if err != nil {
			loadErr = err
			return
		}
		r, err := relops.Load(sp, recordsOf(right), 1)
		if err != nil {
			loadErr = err
			return
		}
		j, _ := relops.Join(c, sp, relops.NewArena(), l, r, relSorter(cfg))
		for _, rec := range relops.UnloadJoined(j) {
			out = append(out, JoinedRow{Key: rec.Key, LeftVal: rec.LeftVal, RightVal: rec.RightVal})
		}
	})
	if err != nil {
		return nil, nil, err
	}
	if loadErr != nil {
		return nil, nil, loadErr
	}
	return out, rep, nil
}

// WideJoinedRow is one output row of JoinAllRows (and of the wide Join
// surface generally): the matched key tuple plus both sides' values. Keys
// holds the key columns in significance order, like WideRow's.
type WideJoinedRow struct {
	Keys              []uint64
	LeftVal, RightVal uint64
}

// wideJoinedOf converts unloaded join records to rows at width w.
func wideJoinedOf(recs []relops.Joined, w int) []WideJoinedRow {
	out := make([]WideJoinedRow, len(recs))
	for i, rec := range recs {
		keys := make([]uint64, w)
		keys[0] = rec.Key
		if w > 1 {
			keys[1] = rec.Key2
		}
		out[i] = WideJoinedRow{Keys: keys, LeftVal: rec.LeftVal, RightVal: rec.RightVal}
	}
	return out
}

// checkJoinTables validates a join's public shape: non-empty sides, equal
// key widths, and a capacity within the row bounds (or the JoinCapAuto
// sentinel, resolved by the advisor inside the run).
func checkJoinTables(left, right Table, maxOut int) error {
	if left.Len() == 0 || right.Len() == 0 {
		return ErrEmptyInput
	}
	if left.Width() != right.Width() {
		return fmt.Errorf("%w (join of width-%d and width-%d tables)", ErrBadWidth, left.Width(), right.Width())
	}
	if maxOut == JoinCapAuto {
		return nil
	}
	if err := relops.CheckCapacity(int64(maxOut)); err != nil {
		return fmt.Errorf("%w (maxOut %d)", ErrBadCapacity, maxOut)
	}
	return nil
}

// resolveJoinCap turns a join's declared capacity into the concrete public
// maxOut: a JoinCapAuto sentinel runs the capacity advisor over the loaded
// relations (one extra sorting pass inside the same run); anything else
// passes through untouched. An advised bound of zero still needs one
// output slot to be a legal capacity.
func resolveJoinCap(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, declared int, l, r relops.Rel, srt obliv.Sorter) (int, error) {
	if declared != JoinCapAuto {
		return declared, nil
	}
	advised, err := relops.JoinCapAdvise(c, sp, ar, l, r, srt)
	if err != nil {
		return 0, fmt.Errorf("%w (advised %d)", ErrCapTooLarge, advised)
	}
	if advised < 1 {
		advised = 1
	}
	return int(advised), nil
}

// JoinAllRows obliviously computes the full many-to-many equi-join of left
// and right: one output row per (left row, right row) pair sharing its key
// tuple, ordered by (right row position, left row position). Unlike Join,
// left key tuples may repeat, and every key width is supported (this is
// the wide Join surface the ROADMAP called for).
//
// maxOut is the *public* output capacity: the access pattern depends only
// on (len(left), len(right), width, maxOut) — never on the contents or on
// the true match count, which stays invisible to the adversary. When the
// match count exceeds maxOut, the error wraps ErrJoinOverflow and carries
// the true count, so the caller can retry with a sufficient public bound
// (at worst len(left)*len(right)). Passing JoinCapAuto instead sizes the
// output with the capacity advisor — the worst-case bound, which cannot
// overflow — at the cost of revealing that bound as public shape.
func JoinAllRows(cfg Config, left, right Table, maxOut int) ([]WideJoinedRow, *Report, error) {
	if err := checkJoinTables(left, right, maxOut); err != nil {
		return nil, nil, err
	}
	w := left.Width()
	var out []WideJoinedRow
	var runErr error
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		l, err := relops.Load(sp, recordsOf(left), w)
		if err != nil {
			runErr = err
			return
		}
		r, err := relops.Load(sp, recordsOf(right), w)
		if err != nil {
			runErr = err
			return
		}
		ar := relops.NewArena()
		srt := relSorter(cfg)
		capOut, err := resolveJoinCap(c, sp, ar, maxOut, l, r, srt)
		if err != nil {
			runErr = err
			return
		}
		j, m, err := relops.JoinAll(c, sp, ar, l, r, capOut, srt)
		if errors.Is(err, relops.ErrJoinOverflow) {
			runErr = fmt.Errorf("%w (%d matches, capacity %d)", ErrJoinOverflow, m, capOut)
			return
		}
		if err != nil {
			runErr = err
			return
		}
		out = wideJoinedOf(relops.UnloadJoined(j), w)
	})
	if err != nil {
		return nil, nil, err
	}
	if runErr != nil {
		return nil, nil, runErr
	}
	return out, rep, nil
}

// JoinSpec declares the optional join stage of a Query.
type JoinSpec struct {
	// Left is the relation joined against the queried table: every row of
	// the table is matched with every Left row sharing its full key tuple.
	// Key tuples may repeat on both sides (many-to-many).
	Left Table
	// MaxOut is the public output capacity of the join — part of the query
	// shape, like the table sizes. A query whose true match count exceeds
	// it fails with ErrJoinOverflow. JoinCapAuto delegates the choice to
	// the capacity advisor (the worst-case bound can never overflow).
	MaxOut int
}

// Query is a declarative oblivious analytics pipeline over one table:
//
//	Join (optional) → Filter (optional) → Distinct (optional) → GroupBy (optional) → TopK (optional)
//
// The query structure (which stages run, the aggregation, k, the declared
// key-only-ness of the filter) is public, as is the table's key-column
// count; the table contents, including how many rows survive each stage,
// are not: every stage processes the full padded array, so the trace
// depends only on the table's row count, its width, and the query shape.
// The Distinct and GroupBy stages group by the table's full key tuple.
//
// RunQuery compiles the stages through the internal/plan sort-fusion
// planner before executing: stages that only drop rows defer their
// compaction to the next sort, adjacent stages needing the same key order
// share one sorting pass, and a filter declared FilterKeyOnly is pushed
// below Distinct/GroupBy into their existing passes. A multi-stage query
// therefore runs strictly fewer O(n log² n) sorting-network passes than
// calling the stand-alone operators in sequence (the full four-stage
// pipeline: 2 sorts instead of 6) while producing the same rows — at
// every key width.
type Query struct {
	// Join, when non-nil, prepends a many-to-many equi-join stage: the
	// queried table (the join's right side) is expanded to one row per
	// (Left row, table row) pair sharing its full key tuple, carrying the
	// table row's value, and the later stages run over the matches. Left
	// values are not delivered through a Query (use JoinAllRows for both
	// sides' values). The planner defers the join's value-propagation and
	// output-compaction sorts whenever a later stage re-sorts anyway.
	Join *JoinSpec
	// Filter keeps the rows satisfying the predicate (nil = keep all).
	// Width-1 tables only; multi-column tables use FilterWide.
	Filter func(Row) bool
	// FilterWide is the wide-predicate filter form, accepted at every key
	// width (the row carries the full key tuple). At most one of Filter
	// and FilterWide may be set.
	FilterWide func(WideRow) bool
	// FilterKeyOnly declares that the filter (either form) depends only on
	// the key columns. This is public query shape: it allows the planner
	// to push the filter below Distinct/GroupBy (a key-only predicate
	// drops whole key groups, so dedup heads and group aggregates are
	// unchanged by the reorder). A predicate that reads the value despite
	// this declaration yields unspecified results — though still an
	// oblivious trace.
	FilterKeyOnly bool
	// Distinct deduplicates by the key tuple before aggregation.
	Distinct bool
	// GroupBy aggregates values per key tuple (AggNone = no aggregation).
	GroupBy Agg
	// TopK keeps only the k largest-value rows (0 = keep all).
	TopK int
	// KeyOrderOut delivers the result rows in ascending key-tuple order
	// instead of the operators' first-occurrence order, and stamps the
	// result Table with the OrderKeys token. For queries ending in
	// Distinct/GroupBy the relation is already key-sorted after the group
	// pass, so the position-restoring compaction sort disappears entirely
	// (a plain GroupBy runs 1 sort instead of 2); other non-TopK shapes
	// pay one key sort in place of the compaction sort. TopK queries
	// ignore it (their public order is descending value). This is the
	// serving layer's materialization mode: a follow-up query over the
	// stored result skips its own key sort via the token. The requested
	// order is public query shape, like every other field here.
	KeyOrderOut bool
	// NoOptimize executes the stages one stand-alone operator at a time,
	// bypassing the planner — the pre-fusion baseline kept for A/B
	// benchmarking and differential testing.
	NoOptimize bool
}

// shape extracts the public planner shape of q over a width-w table whose
// sorted-by token is ord. Every field — including the fed-forward input
// order — is public, so the compiled plan (and with it the trace) stays a
// function of query shapes only.
func (q Query) shape(kind relops.AggKind, w int, ord TableOrder) plan.Shape {
	return plan.Shape{
		KeyCols:       w,
		Join:          q.Join != nil,
		Filter:        q.Filter != nil || q.FilterWide != nil,
		FilterKeyOnly: q.FilterKeyOnly,
		Distinct:      q.Distinct,
		GroupBy:       q.GroupBy != AggNone,
		Agg:           uint8(kind),
		TopK:          q.TopK,
		InputOrder:    planOrderOf(ord),
		KeyOrderOut:   q.KeyOrderOut,
	}
}

// Explain returns the pass sequence q will execute over a width-1 table
// (ExplainWidth renders other widths), e.g.
// "filter-mark → sort(key,pos) → dedup+aggregate → sort(val↓) → topk
// [2 sorts, staged 6]" — or, for a NoOptimize query, the staged operator
// sequence. It validates q exactly like RunQuery and depends only on the
// query shape.
func Explain(q Query) (string, error) {
	return ExplainWidth(q, 1)
}

// ExplainTable is Explain against a concrete table: the plan is built at
// the table's key width and — the cross-query seam — against its sorted-by
// token, so a query whose first sort the token covers renders without that
// sort (e.g. "in(key,pos) → aggregate [0 sorts, cold 1, staged 2]").
func ExplainTable(t Table, q Query) (string, error) {
	return explainOrdered(q, t.Width(), t.order)
}

// ExplainWidth is Explain for a table of w key columns.
func ExplainWidth(q Query, w int) (string, error) {
	return explainOrdered(q, w, OrderNone)
}

func explainOrdered(q Query, w int, ord TableOrder) (string, error) {
	kind, err := queryAgg(q)
	if err != nil {
		return "", err
	}
	pl := plan.Build(q.shape(kind, w, ord))
	if !q.NoOptimize {
		return pl.String(), nil
	}
	s := ""
	for _, st := range []struct {
		on   bool
		name string
	}{
		{q.Join != nil, "join-all"},
		{q.Filter != nil || q.FilterWide != nil, "filter"},
		{q.Distinct, "distinct"},
		{q.GroupBy != AggNone, "group-by"},
		{q.TopK > 0, "top-k"},
	} {
		if !st.on {
			continue
		}
		if s != "" {
			s += " → "
		}
		s += st.name
	}
	if s == "" {
		s = "identity"
	}
	return fmt.Sprintf("staged: %s [%d sorts]", s, pl.StagedSortPasses), nil
}

// pred resolves q's filter (either form) to a relational-record predicate
// at width w, or nil when the query has no filter.
func (q Query) pred(w int) func(relops.Record) bool {
	if q.FilterWide != nil {
		fw := q.FilterWide
		return func(r relops.Record) bool { return fw(wideRowOf(r, w)) }
	}
	if q.Filter != nil {
		f := q.Filter
		return func(r relops.Record) bool { return f(Row{Key: r.Key, Val: r.Val}) }
	}
	return nil
}

// queryAgg validates q's shape parameters (shared by RunQuery and Explain,
// so the explain surface never blesses a shape the executor refuses) and
// resolves the aggregation kind.
func queryAgg(q Query) (relops.AggKind, error) {
	if q.Filter != nil && q.FilterWide != nil {
		return 0, fmt.Errorf("oblivmc: Query.Filter and Query.FilterWide are mutually exclusive")
	}
	if q.TopK < 0 {
		return 0, fmt.Errorf("oblivmc: negative k %d", q.TopK)
	}
	if q.GroupBy == AggNone {
		return 0, nil
	}
	return q.GroupBy.kind()
}

// RunQuery executes q over t under one executor run, so a metered Config
// yields a single Report covering the whole pipeline.
func RunQuery(cfg Config, t Table, q Query) (Table, *Report, error) {
	if t.Len() == 0 {
		return Table{}, nil, ErrEmptyInput
	}
	if q.Filter != nil && t.Width() > 1 {
		return Table{}, nil, errWideFilter("Query.Filter")
	}
	if q.Join != nil {
		if err := checkJoinTables(q.Join.Left, t, q.Join.MaxOut); err != nil {
			return Table{}, nil, err
		}
	}
	kind, err := queryAgg(q)
	if err != nil {
		return Table{}, nil, err
	}
	if q.NoOptimize {
		return runQueryStaged(exec{cfg: cfg}, t, q, kind, relSorter(cfg))
	}
	return runQueryPlanned(exec{cfg: cfg}, t, q, kind, relSorter(cfg))
}

// queryJoin runs q's join stage over the loaded right relation r (the
// queried table): it loads the left relation and expands r to one record
// per match, carrying the right record's key tuple, value, and original
// position. deferred selects JoinAllDeferred (the planner dropped the
// join's propagate+compact tail because a later pass re-sorts anyway).
// The returned error is the public ErrJoinOverflow wrap used by
// JoinAllRows, carrying the true match count for the retry.
func queryJoin(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, j *JoinSpec, r relops.Rel, deferred bool, srt obliv.Sorter) (relops.Rel, error) {
	l, err := relops.Load(sp, recordsOf(j.Left), r.W)
	if err != nil {
		return relops.Rel{}, err
	}
	maxOut, err := resolveJoinCap(c, sp, ar, j.MaxOut, l, r, srt)
	if err != nil {
		return relops.Rel{}, err
	}
	var (
		joined relops.Rel
		m      int
	)
	if deferred {
		joined, m, err = relops.JoinAllDeferred(c, sp, ar, l, r, maxOut, srt)
	} else {
		joined, m, err = relops.JoinAll(c, sp, ar, l, r, maxOut, srt)
	}
	if errors.Is(err, relops.ErrJoinOverflow) {
		return relops.Rel{}, fmt.Errorf("%w (%d matches, capacity %d)", ErrJoinOverflow, m, maxOut)
	}
	if err != nil {
		return relops.Rel{}, err
	}
	return joined, nil
}

// runQueryPlanned compiles q's shape — including the input table's
// sorted-by token, the cross-query seam — and executes the fused pass
// sequence. The join stage is binary, so the query layer — which holds
// both relations — peels it off the plan's head and hands Execute the
// remaining unary passes over the expanded relation. The result table is
// stamped with the plan's output order token.
func runQueryPlanned(e exec, t Table, q Query, kind relops.AggKind, srt obliv.Sorter) (Table, *Report, error) {
	pl := plan.Build(q.shape(kind, t.Width(), t.order))
	pred := q.pred(t.Width())
	out, rep, err := runTableOp(e, t, srt, func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, r relops.Rel, srt obliv.Sorter) (relops.Rel, error) {
		rest := pl
		if q.Join != nil {
			jop := rest.Ops[0] // plan.Build puts OpJoinAll first
			rest.Ops = rest.Ops[1:]
			var err error
			if r, err = queryJoin(c, sp, ar, q.Join, r, jop.Deferred, srt); err != nil {
				return relops.Rel{}, err
			}
		}
		relops.Execute(c, sp, ar, r, rest, pred, srt)
		return r, nil
	})
	if err != nil {
		return Table{}, nil, err
	}
	out.order = tableOrderOf(pl.Output)
	return out, rep, nil
}

// runQueryStaged is the pre-planner execution: each stage is a stand-alone
// operator paying its own sorts and per-call scratch — the pre-fusion
// behavior, kept as the benchmarking baseline. (Its sorts now run the
// same schedule path as everything else — the packed-composite closure
// comparator no longer exists — so the A/B difference it isolates is
// purely the planner's pass structure.)
func runQueryStaged(e exec, t Table, q Query, kind relops.AggKind, srt obliv.Sorter) (Table, *Report, error) {
	// The unary operators run with nil scratch (per-call allocation), as
	// the pre-planner baseline always has; only the join uses the per-run
	// arena.
	return runTableOp(e, t, srt, func(c *forkjoin.Ctx, sp *mem.Space, ar *relops.Arena, r relops.Rel, srt obliv.Sorter) (relops.Rel, error) {
		if q.Join != nil {
			// The stand-alone operator pays its full three sorts.
			var err error
			if r, err = queryJoin(c, sp, ar, q.Join, r, false, srt); err != nil {
				return relops.Rel{}, err
			}
		}
		if pred := q.pred(r.W); pred != nil {
			relops.Compact(c, sp, nil, r, pred, srt)
		}
		if q.Distinct {
			relops.Distinct(c, sp, nil, r, srt)
		}
		if q.GroupBy != AggNone {
			relops.GroupBy(c, sp, nil, r, kind, srt)
		}
		if q.TopK > 0 {
			relops.TopK(c, sp, nil, r, q.TopK, srt)
		}
		return r, nil
	})
}
