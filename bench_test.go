package oblivmc

// Benchmark harness: one testing.B benchmark per table/figure of the paper
// (wall-clock, parallel executor). The shape analysis with exact
// work/span/cache metrics lives in cmd/oblivbench (see DESIGN.md §4 and
// EXPERIMENTS.md); these benchmarks measure real multicore runtime of the
// same code paths.

import (
	"fmt"
	"testing"

	"oblivmc/internal/benchdata"
	"oblivmc/internal/bitonic"
	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/graph"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/oram"
	"oblivmc/internal/pram"
	"oblivmc/internal/prng"
	"oblivmc/internal/relops"
	"oblivmc/internal/spms"
)

// benchPool shares one work-stealing pool across iterations.
var benchPool = forkjoin.NewPool(0)

func benchKeys(n int) []uint64 {
	src := prng.New(42)
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		k := src.Uint64() >> 4
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func benchElems(sp *mem.Space, keys []uint64) *mem.Array[obliv.Elem] {
	a := mem.Alloc[obliv.Elem](sp, len(keys))
	for i, k := range keys {
		a.Data()[i] = obliv.Elem{Key: k, Kind: obliv.Real}
	}
	return a
}

// --- Table 1: Sort --------------------------------------------------------

func BenchmarkTable1Sort_ObliviousPractical(b *testing.B) {
	keys := benchKeys(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			core.SortPractical(c, sp, benchElems(sp, keys), 1, core.Params{})
		})
	}
}

func BenchmarkTable1Sort_ObliviousTheory(b *testing.B) {
	keys := benchKeys(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			core.SortWith(c, sp, benchElems(sp, keys), 1, core.Params{}, spms.InsecureSampleSort(2))
		})
	}
}

func BenchmarkTable1Sort_InsecureSampleSort(b *testing.B) {
	keys := benchKeys(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			spms.SampleSort(c, sp, benchElems(sp, keys), 2)
		})
	}
}

func BenchmarkTable1Sort_InsecureMergeSort(b *testing.B) {
	keys := benchKeys(1 << 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			spms.MergeSort(c, sp, benchElems(sp, keys))
		})
	}
}

// --- Table 1: list ranking -------------------------------------------------

func benchList(n int) []int {
	src := prng.New(7)
	order := src.Perm(n)
	succ := make([]int, n)
	for k := 0; k < n-1; k++ {
		succ[order[k]] = order[k+1]
	}
	succ[order[n-1]] = order[n-1]
	return succ
}

func BenchmarkTable1ListRank_Oblivious(b *testing.B) {
	succ := benchList(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.ListRankOblivious(c, sp, succ, nil, 3, core.Params{})
		})
	}
}

func BenchmarkTable1ListRank_InsecureDirect(b *testing.B) {
	succ := benchList(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.ListRankDirect(c, sp, succ, nil)
		})
	}
}

// --- Table 1: Euler-tour tree computations ---------------------------------

func benchTree(n int) [][2]int {
	src := prng.New(9)
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{src.Intn(v), v})
	}
	return edges
}

func BenchmarkTable1Euler_Oblivious(b *testing.B) {
	const n = 256
	edges := benchTree(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.TreeFunctionsOblivious(c, sp, n, edges, 0, 5, core.Params{})
		})
	}
}

func BenchmarkTable1Euler_InsecureDirect(b *testing.B) {
	const n = 256
	edges := benchTree(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.TreeFunctionsDirect(c, sp, n, edges, 0, 5)
		})
	}
}

// --- Table 1: tree contraction ----------------------------------------------

func benchExpr(leaves int) graph.ExprTree {
	src := prng.New(11)
	n := 2*leaves - 1
	t := graph.ExprTree{
		N: n, Left: make([]int, n), Right: make([]int, n),
		Op: make([]uint8, n), LeafVal: make([]uint64, n),
	}
	for i := range t.Left {
		t.Left[i], t.Right[i] = -1, -1
	}
	roots := make([]int, leaves)
	for i := 0; i < leaves; i++ {
		roots[i] = i
		t.LeafVal[i] = src.Uint64n(1 << 20)
	}
	next := leaves
	for len(roots) > 1 {
		i := src.Intn(len(roots))
		a := roots[i]
		roots[i] = roots[len(roots)-1]
		roots = roots[:len(roots)-1]
		j := src.Intn(len(roots))
		t.Left[next], t.Right[next] = a, roots[j]
		t.Op[next] = uint8(src.Intn(2))
		roots[j] = next
		next++
	}
	t.Root = roots[0]
	return t
}

func BenchmarkTable1TreeContraction_Oblivious(b *testing.B) {
	tr := benchExpr(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.EvalTreeOblivious(c, sp, tr, 7, core.Params{})
		})
	}
}

func BenchmarkTable1TreeContraction_InsecureDescent(b *testing.B) {
	tr := benchExpr(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.EvalTreeDirect(c, sp, tr)
		})
	}
}

// --- Table 1: CC and MSF -----------------------------------------------------

func benchGraph(n, m int) [][2]int {
	src := prng.New(13)
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

func BenchmarkTable1CC_Oblivious(b *testing.B) {
	const n = 64
	edges := benchGraph(n, 2*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.ConnectedComponentsOblivious(c, sp, n, edges, core.Params{})
		})
	}
}

func BenchmarkTable1CC_InsecureDirect(b *testing.B) {
	const n = 64
	edges := benchGraph(n, 2*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.ConnectedComponentsDirect(c, sp, n, edges)
		})
	}
}

func benchWeighted(n, m int) []graph.WEdge {
	src := prng.New(17)
	edges := make([]graph.WEdge, 0, m)
	for len(edges) < m {
		u, v := src.Intn(n), src.Intn(n)
		if u != v {
			edges = append(edges, graph.WEdge{U: u, V: v, W: src.Uint64n(1 << 16)})
		}
	}
	return edges
}

func BenchmarkTable1MSF_Oblivious(b *testing.B) {
	const n = 64
	edges := benchWeighted(n, 2*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.MinimumSpanningForestOblivious(c, sp, n, edges, core.Params{})
		})
	}
}

func BenchmarkTable1MSF_InsecureDirect(b *testing.B) {
	const n = 64
	edges := benchWeighted(n, 2*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			graph.MinimumSpanningForestDirect(c, sp, n, edges)
		})
	}
}

// --- Table 2: building blocks ------------------------------------------------

func BenchmarkTable2Aggregate(b *testing.B) {
	const n = 1 << 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			a := mem.Alloc[obliv.Elem](sp, n)
			for j := 0; j < n; j++ {
				a.Data()[j] = obliv.Elem{Key: uint64(j / 8), Val: uint64(j), Kind: obliv.Real}
			}
			obliv.AggregateSuffix(c, sp, a,
				func(e obliv.Elem) uint64 { return e.Key },
				func(e obliv.Elem) uint64 { return e.Val },
				func(x, y uint64) uint64 { return x + y },
				func(e obliv.Elem, i int, agg uint64) obliv.Elem { e.Aux = agg; return e })
		})
	}
}

func BenchmarkTable2Propagate(b *testing.B) {
	const n = 1 << 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			a := mem.Alloc[obliv.Elem](sp, n)
			for j := 0; j < n; j++ {
				a.Data()[j] = obliv.Elem{Key: uint64(j / 8), Val: uint64(j), Kind: obliv.Real}
			}
			obliv.PropagateFirst(c, sp, a,
				func(e obliv.Elem) uint64 { return e.Key },
				func(e obliv.Elem, i int) (uint64, bool) { return e.Val, true },
				func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem { e.Aux = v; return e })
		})
	}
}

func BenchmarkTable2SendReceive(b *testing.B) {
	const n = 1 << 10
	srt := bitonic.CacheAgnostic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			sources := mem.Alloc[obliv.Elem](sp, n)
			dests := mem.Alloc[obliv.Elem](sp, n)
			for j := 0; j < n; j++ {
				sources.Data()[j] = obliv.Elem{Key: uint64(j), Val: uint64(j * 3), Kind: obliv.Real}
				dests.Data()[j] = obliv.Elem{Key: uint64((j * 7) % n), Kind: obliv.Real}
			}
			obliv.SendReceive(c, sp, sources, dests, srt)
		})
	}
}

func BenchmarkTable2PRAMStep_Oblivious(b *testing.B) {
	const n = 128
	mach := &pram.AddConstMachine{N: n, K: 1}
	srt := bitonic.CacheAgnostic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			pram.RunOblivious(c, sp, mach, make([]uint64, n), srt)
		})
	}
}

func BenchmarkTable2PRAMStep_Direct(b *testing.B) {
	const n = 128
	mach := &pram.AddConstMachine{N: n, K: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			pram.RunDirect(c, sp, mach, make([]uint64, n))
		})
	}
}

// --- Figure 1 / Theorem E.1: bitonic variants ---------------------------------

func benchBitonic(b *testing.B, s obliv.Sorter) {
	const n = 1 << 12
	keys := benchKeys(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			a := benchElems(sp, keys)
			s.Sort(c, sp, a, 0, n, func(e obliv.Elem) uint64 { return e.Key })
		})
	}
}

func BenchmarkFig1Bitonic_CacheAgnostic(b *testing.B) { benchBitonic(b, bitonic.CacheAgnostic{}) }
func BenchmarkFig1Bitonic_Naive(b *testing.B)         { benchBitonic(b, bitonic.Naive{}) }
func BenchmarkFig1Bitonic_OddEven(b *testing.B)       { benchBitonic(b, bitonic.OddEven{}) }

// --- Lemma 3.1: ORBA variants --------------------------------------------------

func benchORBA(b *testing.B, meta bool, p core.Params) {
	const n = 1 << 11
	keys := benchKeys(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			sp := mem.NewSpace()
			in := benchElems(sp, keys)
			tape := prng.NewTape(7, core.TapeLen(n, p))
			if meta {
				core.MetaORBA(c, sp, in, tape, p)
			} else {
				core.RecORBA(c, sp, in, tape, p)
			}
		})
	}
}

func BenchmarkORBA_Recursive(b *testing.B)       { benchORBA(b, false, core.Params{}) }
func BenchmarkORBA_RecursiveGamma2(b *testing.B) { benchORBA(b, false, core.Params{Gamma: 2}) }
func BenchmarkORBA_Meta(b *testing.B)            { benchORBA(b, true, core.Params{}) }

// --- Relational operators (internal/relops) ------------------------------------
//
// Perf trajectory for the oblivious analytics layer: elements/sec at
// n ∈ {2^12, 2^16, 2^20}. Run with -benchtime=1x for a quick spot check —
// the 2^20 points sort a million-element array through the full bitonic
// pipeline and take seconds per iteration.

var relopsSizes = []int{1 << 12, 1 << 16, 1 << 20}

// benchRecords is the canonical workload shared with cmd/relbench, so the
// BENCH_2.json trend artifact stays comparable with these benchmarks.
func benchRecords(n int) []relops.Record { return benchdata.Records(n) }

func benchLoad(b *testing.B, sp *mem.Space, recs []relops.Record) relops.Rel {
	return benchLoadW(b, sp, recs, 1)
}

func benchLoadW(b *testing.B, sp *mem.Space, recs []relops.Record, w int) relops.Rel {
	r, err := relops.Load(sp, recs, w)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func benchRelop(b *testing.B, n int, op func(c *forkjoin.Ctx, sp *mem.Space, recs []relops.Record)) {
	recs := benchRecords(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPool.Run(func(c *forkjoin.Ctx) {
			op(c, mem.NewSpace(), recs)
		})
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}

func BenchmarkCompact(b *testing.B) {
	for _, n := range relopsSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRelop(b, n, func(c *forkjoin.Ctx, sp *mem.Space, recs []relops.Record) {
				a := benchLoad(b, sp, recs)
				relops.Compact(c, sp, relops.NewArena(), a, func(r relops.Record) bool { return r.Val%2 == 0 }, bitonic.CacheAgnostic{})
			})
		})
	}
}

func BenchmarkGroupBy(b *testing.B) {
	for _, n := range relopsSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRelop(b, n, func(c *forkjoin.Ctx, sp *mem.Space, recs []relops.Record) {
				a := benchLoad(b, sp, recs)
				relops.GroupBy(c, sp, relops.NewArena(), a, relops.AggSum, bitonic.CacheAgnostic{})
			})
		})
	}
}

// BenchmarkGroupByWide is the width-2 GROUP BY (a, b) point: the same
// pipeline against a three-word (col, col, position) key schedule with the
// one-pass (sum, count) moment aggregate.
func BenchmarkGroupByWide(b *testing.B) {
	for _, n := range relopsSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			wrecs := benchdata.WideRecords(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPool.Run(func(c *forkjoin.Ctx) {
					sp := mem.NewSpace()
					a := benchLoadW(b, sp, wrecs, 2)
					relops.GroupBy(c, sp, relops.NewArena(), a, relops.AggAvg, bitonic.CacheAgnostic{})
				})
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
		})
	}
}

func BenchmarkJoin(b *testing.B) {
	for _, n := range relopsSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Left: primary relation with distinct keys; right: n records
			// over the same key range.
			lrecs := benchdata.LeftRecords(n)
			recs := benchRecords(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPool.Run(func(c *forkjoin.Ctx) {
					sp := mem.NewSpace()
					l := benchLoad(b, sp, lrecs)
					r := benchLoad(b, sp, recs)
					relops.Join(c, sp, relops.NewArena(), l, r, bitonic.CacheAgnostic{})
				})
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
		})
	}
}

// BenchmarkJoinAll is the many-to-many expansion join point: left keys
// repeat (multiplicity 2), the match count equals n exactly, and the public
// capacity is tight (maxOut = n) — the operator's three sorts plus the
// expansion's bitonic merge run over the
// NextPow2(NextPow2(nl+n)+NextPow2(n)) work relation at full occupancy.
// The sorter is the size-adaptive shuffle-then-sort backend (the library
// default at these sizes), matching cmd/relbench's join_all point; the
// seed is pinned so iterations measure identical traces.
func BenchmarkJoinAll(b *testing.B) {
	var seed uint64 = 1
	for _, n := range relopsSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			lrecs, rrecs, maxOut := benchdata.JoinAllRecords(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPool.Run(func(c *forkjoin.Ctx) {
					sp := mem.NewSpace()
					l := benchLoad(b, sp, lrecs)
					r := benchLoad(b, sp, rrecs)
					srt := &core.ShuffleSorter{FixedSeed: &seed}
					if _, _, err := relops.JoinAll(c, sp, relops.NewArena(), l, r, maxOut, srt); err != nil {
						b.Fatal(err)
					}
				})
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
		})
	}
}

// --- End-to-end query pipeline: planner (fused) vs staged baseline ------------
//
// The multi-stage Filter→Distinct→GroupBy→TopK pipeline the sort-fusion
// planner targets: 6 staged sorting-network passes collapse to 2 fused
// ones (see internal/plan), with the remaining sorts on the cached-key
// comparator fast path.

func benchQuery(n int) (Table, Query) {
	recs := benchRecords(n)
	rows := make([]Row, len(recs))
	for i, r := range recs {
		rows[i] = Row{Key: r.Key, Val: r.Val}
	}
	t, err := NewTable(rows)
	if err != nil {
		panic(err)
	}
	return t, Query{
		Filter:   func(r Row) bool { return benchdata.FilterPred(r.Val) },
		Distinct: true,
		GroupBy:  AggSum,
		TopK:     benchdata.TopK,
	}
}

func benchRunQuery(b *testing.B, n int, optimize bool) {
	t, q := benchQuery(n)
	q.NoOptimize = !optimize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunQuery(Config{}, t, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}

func BenchmarkQueryFused(b *testing.B) {
	for _, n := range relopsSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchRunQuery(b, n, true) })
	}
}

func BenchmarkQueryStaged(b *testing.B) {
	for _, n := range relopsSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchRunQuery(b, n, false) })
	}
}

// --- Graph workloads over edge tables -------------------------------------------
//
// The edge-table graph points matching cmd/relbench's graph_cc_* /
// graph_msf entries: the canonical benchmark graph (m edges, m/16
// vertices), min-hook connected components on both sort backends and the
// Borůvka MSF on the default backend. "n" counts edges. MSF stops at 2^16
// edges — its revealed iteration count makes 2^20 a multi-hour point —
// while CC runs the full 2^16/2^20 spread.

var graphSizes = []int{1 << 16, 1 << 20}

func benchEdgeTable(b *testing.B, m int) Table {
	_, ge := benchdata.GraphEdges(m)
	edges := make([]WeightedEdge, len(ge))
	for i, e := range ge {
		edges[i] = WeightedEdge{U: e.U, V: e.V, W: e.W}
	}
	t, err := NewEdgeTable(edges)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func benchGraphCC(b *testing.B, backend SortBackend) {
	for _, m := range graphSizes {
		if testing.Short() && m > 1<<16 {
			continue
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			t := benchEdgeTable(b, m)
			cfg := Config{Seed: 1, SortBackend: backend, DeterministicShuffle: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Components(cfg, t, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

func BenchmarkGraphCC_Bitonic(b *testing.B) { benchGraphCC(b, SortBitonic) }
func BenchmarkGraphCC_Shuffle(b *testing.B) { benchGraphCC(b, SortShuffle) }

func BenchmarkGraphMSF(b *testing.B) {
	m := 1 << 16
	b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
		t := benchEdgeTable(b, m)
		cfg := Config{Seed: 1, DeterministicShuffle: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := MSF(cfg, t); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
	})
}

// --- Theorem 4.2: OPRAM batches -------------------------------------------------

func BenchmarkOPRAMBatch(b *testing.B) {
	benchPool.Run(func(c *forkjoin.Ctx) {
		sp := mem.NewSpace()
		o := oram.New(c, sp, 12, 4, oram.Options{Seed: 3})
		reqs := []oram.Req{{Addr: 1}, {Addr: 5, Write: true, Val: 9}, {Addr: 2}, {Addr: 3}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Access(c, sp, reqs)
		}
	})
}
