package oblivmc

import (
	"context"
	"errors"
	"fmt"

	"oblivmc/internal/forkjoin"
)

// Query-lifecycle errors. Every aborted execution surfaces as exactly one
// of these (matchable with errors.Is), so servers can map outcomes to
// typed responses without string inspection.
var (
	// ErrCanceled is returned when a run's cancellation token trips — via
	// Config.Cancel, Session.Interrupt, or a canceled context. The error
	// message carries only the public checkpoint site (a pass index /
	// layer name that is a function of public shape), never data.
	ErrCanceled = errors.New("oblivmc: execution canceled")
	// ErrDeadline is returned when a context deadline caused the
	// cancellation (Session.RunQueryCtx with a deadline context).
	ErrDeadline = errors.New("oblivmc: execution deadline exceeded")
	// ErrInternal is returned when an execution panicked. The concrete
	// error is a *PanicError wrapping this sentinel; the session that ran
	// it is poisoned (its arena and sorter state are suspect) and refuses
	// further queries — rebuild it.
	ErrInternal = errors.New("oblivmc: internal execution fault")
)

// PanicError is the typed form of a panic recovered at the execution
// boundary: the original panic value plus the panicking goroutine's stack.
// It wraps ErrInternal.
type PanicError struct {
	Val   any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%v: panic: %v", ErrInternal, e.Val)
}

// Unwrap makes errors.Is(err, ErrInternal) match.
func (e *PanicError) Unwrap() error { return ErrInternal }

// Cancel is a reusable cooperative cancellation token for the one-shot
// surfaces: create one, set it as Config.Cancel, and trip it from any
// goroutine to abort the run with ErrCanceled. Checks happen only at
// public-shape points (between sort passes, network layers, graph
// rounds), so an untripped token leaves the trace byte-identical to a run
// with no token, and an abort reveals only a public pass site. The zero
// value is ready to use; a token is single-trip (create a fresh one per
// run to cancel runs independently).
type Cancel struct {
	cn forkjoin.Cancel
}

// NewCancel returns a fresh untripped token.
func NewCancel() *Cancel { return &Cancel{} }

// Cancel trips the token; the run aborts at its next checkpoint.
func (c *Cancel) Cancel() { c.cn.Cancel() }

// Canceled reports whether the token has been tripped.
func (c *Cancel) Canceled() bool { return c != nil && c.cn.Canceled() }

// token resolves the internal forkjoin token (nil-safe).
func (c *Cancel) token() *forkjoin.Cancel {
	if c == nil {
		return nil
	}
	return &c.cn
}

// watchCtx trips cn when ctx is done. The returned stop function releases
// the watcher goroutine; call it before returning.
func watchCtx(ctx context.Context, cn *forkjoin.Cancel) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			cn.Cancel()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// ctxErrOf refines a canceled run's error against the context that drove
// it: a deadline-caused abort becomes ErrDeadline (still carrying the
// public site detail), everything else passes through.
func ctxErrOf(ctx context.Context, err error) error {
	if err == nil || ctx == nil || !errors.Is(err, ErrCanceled) {
		return err
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w: %v", ErrDeadline, err)
	}
	return err
}
