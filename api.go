package oblivmc

import (
	"fmt"

	"oblivmc/internal/core"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/graph"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/oram"
	"oblivmc/internal/pram"
)

// Sort sorts keys data-obliviously with the paper's practical variant
// (Theorem 3.2 pipeline with REC-SORT, §3.4/§E): the adversary's view is
// independent of the key values. Keys must be < 2^62 and, for the
// security argument of [CGLS18/ACN+20] to apply, distinct.
func Sort(cfg Config, keys []uint64) ([]uint64, *Report, error) {
	if err := checkKeys(keys); err != nil {
		return nil, nil, err
	}
	out := make([]uint64, len(keys))
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		res := core.SortKeys(c, sp, keys, cfg.Seed, cfg.Tuning.params())
		copy(out, res)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// Shuffle applies a uniformly random oblivious permutation (§C.3/§D.2) to
// keys: the adversary's view reveals nothing about the permutation.
func Shuffle(cfg Config, keys []uint64) ([]uint64, *Report, error) {
	if err := checkKeys(keys); err != nil {
		return nil, nil, err
	}
	out := make([]uint64, len(keys))
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		in := mem.Alloc[obliv.Elem](sp, len(keys))
		for i, k := range keys {
			in.Data()[i] = obliv.Elem{Key: k, Kind: obliv.Real}
		}
		perm, _ := core.MustRandomPermutation(c, sp, in, cfg.Seed, cfg.Tuning.params())
		for i, e := range perm.Data() {
			out[i] = e.Key
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// ListRank obliviously realizes weighted list ranking (Theorem 5.1):
// succ[i] is i's successor (succ[i] == i marks the tail); the result's
// entry i is the sum of weights of the elements strictly ahead of i
// (weights nil = unit weights, i.e. distance to the tail). Weights must be
// < 2^32.
func ListRank(cfg Config, succ []int, weights []uint64) ([]uint64, *Report, error) {
	if len(succ) == 0 {
		return nil, nil, ErrEmptyInput
	}
	for i, s := range succ {
		if s < 0 || s >= len(succ) {
			return nil, nil, fmt.Errorf("oblivmc: succ[%d] = %d out of range", i, s)
		}
	}
	var out []uint64
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		p := cfg.Tuning.params()
		p.Sorter = relSorter(cfg)
		out = graph.ListRankOblivious(c, sp, succ, weights, cfg.Seed, p)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// TreeInfo carries per-vertex rooted-tree quantities (§5.2).
type TreeInfo struct {
	Parent      []int
	Depth       []uint64
	Preorder    []uint64
	Postorder   []uint64
	SubtreeSize []uint64
}

// TreeFunctions roots the tree (given as an edge list over vertices
// 0..n-1) at root and obliviously computes parent, depth, preorder and
// postorder numbers, and subtree sizes via Euler tour + list ranking
// (§5.2).
func TreeFunctions(cfg Config, n int, edges [][2]int, root int) (TreeInfo, *Report, error) {
	if n <= 0 {
		return TreeInfo{}, nil, ErrEmptyInput
	}
	if len(edges) != n-1 {
		return TreeInfo{}, nil, fmt.Errorf("oblivmc: tree on %d vertices needs %d edges, got %d", n, n-1, len(edges))
	}
	if root < 0 || root >= n {
		return TreeInfo{}, nil, fmt.Errorf("oblivmc: root %d out of range", root)
	}
	var tf graph.TreeFuncs
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		p := cfg.Tuning.params()
		p.Sorter = relSorter(cfg)
		tf = graph.TreeFunctionsOblivious(c, sp, n, edges, root, cfg.Seed, p)
	})
	if err != nil {
		return TreeInfo{}, nil, err
	}
	return TreeInfo(tf), rep, nil
}

// ExpressionTree is a full binary arithmetic expression tree over Z/2^64:
// every internal node has exactly two children (Left/Right = -1 marks a
// leaf) and an operation (OpAdd or OpMul); leaves carry values.
type ExpressionTree struct {
	N       int
	Root    int
	Left    []int
	Right   []int
	Op      []uint8
	LeafVal []uint64
}

// Expression-tree operations.
const (
	OpAdd uint8 = 0
	OpMul uint8 = 1
)

// EvaluateExpressionTree evaluates t by oblivious tree contraction
// (Theorem 5.2(i)): Kosaraju–Delcher rake rounds with oblivious bulk
// operations and per-round oblivious compaction.
func EvaluateExpressionTree(cfg Config, t ExpressionTree) (uint64, *Report, error) {
	gt := graph.ExprTree(t)
	if !gt.Validate() {
		return 0, nil, fmt.Errorf("oblivmc: expression tree must be full binary")
	}
	var out uint64
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		p := cfg.Tuning.params()
		p.Sorter = relSorter(cfg)
		out = graph.EvalTreeOblivious(c, sp, gt, cfg.Seed, p)
	})
	if err != nil {
		return 0, nil, err
	}
	return out, rep, nil
}

// ConnectedComponents obliviously labels the connected components of an
// undirected graph (Theorem 5.2(ii), Shiloach–Vishkin/Awerbuch–Shiloach):
// vertices share a label iff connected. The access pattern depends only on
// (n, number of edges).
func ConnectedComponents(cfg Config, n int, edges [][2]int) ([]int, *Report, error) {
	if n <= 0 {
		return nil, nil, ErrEmptyInput
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, nil, fmt.Errorf("oblivmc: edge %v out of range", e)
		}
	}
	var out []int
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		p := cfg.Tuning.params()
		p.Sorter = relSorter(cfg)
		out = graph.ConnectedComponentsOblivious(c, sp, n, edges, p)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// WeightedEdge is an undirected weighted edge.
type WeightedEdge struct {
	U, V int
	W    uint64
}

// MinimumSpanningForest obliviously computes the minimum spanning forest
// (Theorem 5.2(ii) via Borůvka star-hooking; see DESIGN.md for the PR02
// substitution) and returns the indices of the chosen edges. Ties are
// broken by edge index, making the forest unique. Requirements: n, m <
// 2^21, weights < 2^20.
func MinimumSpanningForest(cfg Config, n int, edges []WeightedEdge) ([]int, *Report, error) {
	if n <= 0 {
		return nil, nil, ErrEmptyInput
	}
	ge := make([]graph.WEdge, len(edges))
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, nil, fmt.Errorf("oblivmc: edge %d out of range", i)
		}
		if e.W >= 1<<20 {
			return nil, nil, fmt.Errorf("oblivmc: edge %d weight too large", i)
		}
		ge[i] = graph.WEdge{U: e.U, V: e.V, W: e.W}
	}
	var out []int
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		p := cfg.Tuning.params()
		p.Sorter = relSorter(cfg)
		out = graph.MinimumSpanningForestOblivious(c, sp, n, ge, p)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// PRAMMachine re-exports the CRCW machine interface accepted by
// SimulatePRAM (see internal/pram for the contract).
type PRAMMachine = pram.Machine

// SimulatePRAM executes a priority-CRCW PRAM program under the oblivious
// space-bounded simulation of Theorem 4.1 (each step: one oblivious
// send-receive read phase, oblivious conflict resolution, one send-receive
// write phase) and returns the final memory image.
func SimulatePRAM(cfg Config, m PRAMMachine, memInit []uint64) ([]uint64, *Report, error) {
	if m.Procs() <= 0 || m.Space() <= 0 {
		return nil, nil, ErrEmptyInput
	}
	var out []uint64
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		out = pram.RunOblivious(c, sp, m, memInit, relSorter(cfg))
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// ORAM is a batched oblivious RAM over 2^SpaceLog words (the large-space
// simulation substrate of Theorem 4.2). It must be created and used under
// a single executor via WithORAM.
type ORAM = oram.OPRAM

// ORAMRequest is one logical request to an ORAM batch.
type ORAMRequest = oram.Req

// WithORAM creates an ORAM over 2^spaceLog words serving batches of
// exactly batch requests and passes it, together with the execution
// context, to body. Access batches are issued via the returned closure.
func WithORAM(cfg Config, spaceLog, batch int, body func(access func([]ORAMRequest) []uint64)) (*Report, error) {
	if spaceLog < 1 || batch < 1 {
		return nil, ErrEmptyInput
	}
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		o := oram.New(c, sp, spaceLog, batch, oram.Options{Seed: cfg.Seed})
		body(func(reqs []ORAMRequest) []uint64 {
			return o.Access(c, sp, reqs)
		})
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func checkKeys(keys []uint64) error {
	if len(keys) == 0 {
		return ErrEmptyInput
	}
	for i, k := range keys {
		if k >= obliv.MaxKey {
			return fmt.Errorf("oblivmc: key %d (index %d) exceeds 2^62-1", k, i)
		}
	}
	return nil
}
