module oblivmc

go 1.24
