package oblivmc

import (
	"fmt"

	"oblivmc/internal/bitonic"
	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/relops"
)

// GroupTotals obliviously computes, for every record i, the sum of values
// over all records sharing groups[i] — the oblivious group-by aggregation
// of the paper's motivating private-analytics workload (§1). The access
// pattern depends only on the number of records: neither the group
// structure nor the values leak. Group keys may repeat (they need not be
// distinct); keys must be < 2^40 and record count at most 2^20 (the
// relational-layer bounds, see internal/relops).
func GroupTotals(cfg Config, groups, values []uint64) ([]uint64, *Report, error) {
	n := len(groups)
	if n == 0 {
		return nil, nil, ErrEmptyInput
	}
	if len(values) != n {
		return nil, nil, fmt.Errorf("oblivmc: %d groups but %d values", n, len(values))
	}
	if n > relops.MaxRows {
		return nil, nil, fmt.Errorf("%w (%d records)", ErrTooManyRows, n)
	}
	for i, g := range groups {
		if g >= relops.KeyLimit {
			return nil, nil, fmt.Errorf("%w (group key %d, index %d)", ErrKeyTooLarge, g, i)
		}
	}
	out := make([]uint64, n)
	rep := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		srt := bitonic.CacheAgnostic{}
		w := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(n))
		for i := 0; i < n; i++ {
			w.Data()[i] = obliv.Elem{Key: groups[i], Val: values[i], Aux: uint64(i), Kind: obliv.Real}
		}
		// Deterministic composite key handles duplicate group keys.
		key1 := func(e obliv.Elem) uint64 {
			if e.Kind != obliv.Real {
				return obliv.InfKey
			}
			return e.Key<<20 | e.Aux
		}
		srt.Sort(c, sp, w, 0, w.Len(), key1)
		groupOf := func(e obliv.Elem) uint64 {
			if e.Kind != obliv.Real {
				return obliv.InfKey
			}
			return e.Key
		}
		// Suffix sums per group; the group's first entry holds the total.
		obliv.AggregateSuffix(c, sp, w, groupOf,
			func(e obliv.Elem) uint64 { return e.Val },
			func(x, y uint64) uint64 { return x + y },
			func(e obliv.Elem, i int, agg uint64) obliv.Elem {
				e.Lbl = agg
				return e
			})
		// Propagate the total from the group's first entry to everyone.
		obliv.PropagateFirst(c, sp, w, groupOf,
			func(e obliv.Elem, i int) (uint64, bool) { return e.Lbl, e.Kind == obliv.Real },
			func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
				if ok {
					e.Lbl = v
				}
				return e
			})
		// Back to input order.
		key2 := func(e obliv.Elem) uint64 {
			if e.Kind != obliv.Real {
				return obliv.InfKey
			}
			return e.Aux
		}
		srt.Sort(c, sp, w, 0, w.Len(), key2)
		for i := 0; i < n; i++ {
			out[i] = w.Data()[i].Lbl
		}
	})
	return out, rep, nil
}

// Lookup obliviously joins queries against a key-value table via
// send-receive (§F): result[i] holds the value for queries[i] and found[i]
// reports whether the key exists. Table keys must be distinct; all keys
// must be < 2^62. The access pattern depends only on the table and query
// sizes.
func Lookup(cfg Config, tableKeys, tableVals, queries []uint64) ([]uint64, []bool, *Report, error) {
	if len(tableKeys) == 0 || len(queries) == 0 {
		return nil, nil, nil, ErrEmptyInput
	}
	if len(tableVals) != len(tableKeys) {
		return nil, nil, nil, fmt.Errorf("oblivmc: %d keys but %d values", len(tableKeys), len(tableVals))
	}
	if err := checkKeys(tableKeys); err != nil {
		return nil, nil, nil, err
	}
	if err := checkKeys(queries); err != nil {
		return nil, nil, nil, err
	}
	vals := make([]uint64, len(queries))
	found := make([]bool, len(queries))
	rep := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		srt := bitonic.CacheAgnostic{}
		sources := mem.Alloc[obliv.Elem](sp, len(tableKeys))
		for i, k := range tableKeys {
			sources.Data()[i] = obliv.Elem{Key: k, Val: tableVals[i], Kind: obliv.Real}
		}
		dests := mem.Alloc[obliv.Elem](sp, len(queries))
		for i, k := range queries {
			dests.Data()[i] = obliv.Elem{Key: k, Kind: obliv.Real}
		}
		routed := obliv.SendReceive(c, sp, sources, dests, srt)
		for i, e := range routed.Data() {
			vals[i] = e.Val
			found[i] = e.Kind == obliv.Real
		}
	})
	return vals, found, rep, nil
}
