package oblivmc

import (
	"fmt"

	"oblivmc/internal/forkjoin"
	"oblivmc/internal/mem"
	"oblivmc/internal/obliv"
	"oblivmc/internal/relops"
)

// GroupTotals obliviously computes, for every record i, the sum of values
// over all records sharing groups[i] — the oblivious group-by aggregation
// of the paper's motivating private-analytics workload (§1). The access
// pattern depends only on the number of records: neither the group
// structure nor the values leak. Group keys may repeat (they need not be
// distinct); keys may span the full uint64 range below relops.KeyLimit and
// the record count is bounded by relops.MaxRows — the schedule-derived
// relational-layer bounds (the sorts run against an obliv.KeySchedule with
// the in-register TiePos position tie-break rather than a packed
// composite, so no bit-packing headroom constrains the key range).
func GroupTotals(cfg Config, groups, values []uint64) ([]uint64, *Report, error) {
	n := len(groups)
	if n == 0 {
		return nil, nil, ErrEmptyInput
	}
	if len(values) != n {
		return nil, nil, fmt.Errorf("oblivmc: %d groups but %d values", n, len(values))
	}
	if int64(n) > relops.MaxRows {
		return nil, nil, fmt.Errorf("%w (%d records)", ErrTooManyRows, n)
	}
	for i, g := range groups {
		if g >= relops.KeyLimit {
			return nil, nil, fmt.Errorf("%w (group key %d, index %d)", ErrKeyTooLarge, g, i)
		}
	}
	out := make([]uint64, n)
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		// The two sorts run the configured relational backend: both are
		// (key, position) schedules with distinct effective keys, so the
		// shuffle composition applies above its crossover.
		srt := relSorter(cfg)
		w := mem.Alloc[obliv.Elem](sp, obliv.NextPow2(n))
		for i := 0; i < n; i++ {
			w.Data()[i] = obliv.Elem{Key: groups[i], Val: values[i], Aux: uint64(i), Kind: obliv.Real}
		}
		m := w.Len()
		ks := obliv.AllocKeySchedule(sp, m, 1)
		kscr := obliv.AllocKeySchedule(sp, m, 1)
		ks.Tie, kscr.Tie = obliv.TiePos, obliv.TiePos
		scr := mem.Alloc[obliv.Elem](sp, m)
		// (key, position) order: one cached key plane, the position
		// tie-break read in-register (TiePos) — deterministic under
		// duplicate group keys, fillers (InfKey sentinel) last.
		obliv.BuildKeySchedule(c, w, ks, 0, m, func(e obliv.Elem, kw []uint64) {
			if e.Kind != obliv.Real {
				kw[0] = obliv.InfKey
				return
			}
			kw[0] = e.Key
		})
		srt.SortScheduled(c, sp, w, ks, scr, kscr, 0, m)
		sameGroup := func(x, y obliv.Elem) bool {
			return x.Kind == y.Kind && (x.Kind != obliv.Real || x.Key == y.Key)
		}
		// Suffix sums per group; the group's first entry holds the total.
		obliv.AggregateSuffixBy(c, sp, w, sameGroup,
			func(e obliv.Elem) uint64 { return e.Val },
			func(x, y uint64) uint64 { return x + y },
			func(e obliv.Elem, i int, agg uint64) obliv.Elem {
				e.Lbl = agg
				return e
			})
		// Propagate the total from the group's first entry to everyone.
		obliv.PropagateFirstBy(c, sp, w, sameGroup,
			func(e obliv.Elem, i int) (uint64, bool) { return e.Lbl, e.Kind == obliv.Real },
			func(e obliv.Elem, i int, v uint64, ok bool) obliv.Elem {
				if ok {
					e.Lbl = v
				}
				return e
			})
		// Back to input order (single-word position schedule).
		obliv.BuildKeySchedule(c, w, ks, 0, m, func(e obliv.Elem, kw []uint64) {
			if e.Kind != obliv.Real {
				kw[0] = obliv.InfKey
				return
			}
			kw[0] = e.Aux
		})
		srt.SortScheduled(c, sp, w, ks, scr, kscr, 0, m)
		for i := 0; i < n; i++ {
			out[i] = w.Data()[i].Lbl
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// Lookup obliviously joins queries against a key-value table via
// send-receive (§F): result[i] holds the value for queries[i] and found[i]
// reports whether the key exists. Table keys must be distinct; all keys
// must be < 2^62. The access pattern depends only on the table and query
// sizes. The routing sorts run the configured sort backend
// (Config.SortBackend), like every other relational operation.
func Lookup(cfg Config, tableKeys, tableVals, queries []uint64) ([]uint64, []bool, *Report, error) {
	if len(tableKeys) == 0 || len(queries) == 0 {
		return nil, nil, nil, ErrEmptyInput
	}
	if len(tableVals) != len(tableKeys) {
		return nil, nil, nil, fmt.Errorf("oblivmc: %d keys but %d values", len(tableKeys), len(tableVals))
	}
	if err := checkKeys(tableKeys); err != nil {
		return nil, nil, nil, err
	}
	if err := checkKeys(queries); err != nil {
		return nil, nil, nil, err
	}
	vals := make([]uint64, len(queries))
	found := make([]bool, len(queries))
	rep, err := run(cfg, func(c *forkjoin.Ctx, sp *mem.Space) {
		srt := relSorter(cfg)
		sources := mem.Alloc[obliv.Elem](sp, len(tableKeys))
		for i, k := range tableKeys {
			sources.Data()[i] = obliv.Elem{Key: k, Val: tableVals[i], Kind: obliv.Real}
		}
		dests := mem.Alloc[obliv.Elem](sp, len(queries))
		for i, k := range queries {
			dests.Data()[i] = obliv.Elem{Key: k, Kind: obliv.Real}
		}
		routed := obliv.SendReceive(c, sp, sources, dests, srt)
		for i, e := range routed.Data() {
			vals[i] = e.Val
			found[i] = e.Kind == obliv.Real
		}
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return vals, found, rep, nil
}
