GO ?= go

.PHONY: all build test vet race bench benchdiff clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates the relational-layer trend artifact: elems/s for
# Compact/GroupBy (narrow and wide)/Join and the end-to-end query (staged
# vs planner-fused) at n ∈ {2^12, 2^16, 2^20}. CI uploads BENCH_3.json on
# every push so the perf trajectory is tracked per commit. BENCH_ARGS can
# bound the sweep, e.g. make bench BENCH_ARGS="-max 65536".
bench:
	$(GO) run ./cmd/relbench -out BENCH_3.json $(BENCH_ARGS)

# benchdiff compares a fresh artifact against the committed baseline and
# flags elems/s regressions beyond the noise threshold (warn-only in CI;
# drop -warn locally to gate).
benchdiff:
	$(GO) run ./cmd/benchdiff -base BENCH_2.json -new BENCH_3.json -warn

clean:
	$(GO) clean ./...
