GO ?= go

.PHONY: all build test vet race bench benchdiff fuzz-smoke clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates the relational-layer trend artifact: elems/s for
# Compact/GroupBy (narrow and wide)/Join/JoinAll and the end-to-end query
# (staged vs planner-fused) at n ∈ {2^12, 2^16, 2^20}. CI uploads
# BENCH_4.json on every push so the perf trajectory is tracked per commit.
# BENCH_ARGS can bound the sweep, e.g. make bench BENCH_ARGS="-max 65536".
bench:
	$(GO) run ./cmd/relbench -out BENCH_4.json $(BENCH_ARGS)

# benchdiff compares a fresh artifact against the committed baseline and
# flags elems/s regressions beyond the noise threshold (warn-only in CI;
# drop -warn locally to gate).
benchdiff:
	$(GO) run ./cmd/benchdiff -base BENCH_3.json -new BENCH_4.json -warn

# fuzz-smoke runs each native fuzz target (operator vs plain-Go reference,
# see internal/relops/fuzz_test.go) for a short exploration budget beyond
# the committed seed corpus. Go allows one -fuzz pattern per invocation, so
# the targets run back to back.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzJoinAll$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzJoin$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzGroupBy$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzDistinct$$' -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
