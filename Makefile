GO ?= go

.PHONY: all build test test-shuffle test-parallel vet race bench bench-sweep benchdiff fuzz-smoke chaos-smoke serve-smoke docker clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-shuffle re-runs the relational suite with the shuffle-then-sort
# backend forced through the env-aware test sorter (the bitonic leg is the
# plain `make test`). CI runs both legs.
test-shuffle:
	OBLIVMC_SORT_BACKEND=shuffle $(GO) test ./internal/relops

# test-parallel is the ModeParallel matrix leg: the relational suite's
# operator calls run on a shared work-stealing pool instead of the serial
# executor (the env-aware testCtx seam), plus the top-level
# serial-vs-parallel equivalence properties. Together with `make race`
# this is the concurrency-correctness gate.
test-parallel:
	OBLIVMC_TEST_MODE=parallel $(GO) test ./internal/relops
	OBLIVMC_TEST_MODE=parallel $(GO) test ./internal/graph
	$(GO) test . -run 'ModeParallel|FingerprintUnaffected|ScalingSmoke' -v

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates the relational-layer trend artifact: elems/s for
# Compact/GroupBy (narrow, wide, and per sort backend)/Join/JoinAll, the
# end-to-end query (staged vs planner-fused, per backend), and the graph
# pipeline (connected components per backend, MSF) at
# n ∈ {2^12, 2^16, 2^20}. CI uploads the artifact on every push so the perf
# trajectory is tracked per commit. BENCH_ARGS can bound the sweep, e.g.
# make bench BENCH_ARGS="-max 65536".
bench:
	$(GO) run ./cmd/relbench -out BENCH_9.json $(BENCH_ARGS)

# bench-sweep records the multicore scaling curve: every point measured
# once per -procs pool size into one artifact (per-result workers field).
# CI runs it bounded to 2^16 on the shared runner and uploads
# BENCH_HEAD.json; run it unbounded on a quiet many-core machine for the
# committed BENCH_*.json scaling baselines. SWEEP_PROCS must not exceed
# GOMAXPROCS (relbench fails fast; -oversubscribe overrides).
SWEEP_PROCS ?= 1,2,4
SWEEP_ARGS ?= -max 65536
bench-sweep:
	$(GO) run ./cmd/relbench -procs $(SWEEP_PROCS) $(SWEEP_ARGS) -out BENCH_HEAD.json
	$(GO) run ./cmd/benchdiff -base BENCH_HEAD.json -new BENCH_HEAD.json -warn

# benchdiff measures the CURRENT build (a bounded fresh sweep into the
# uncommitted BENCH_HEAD.json) and compares it against the latest committed
# baseline, flagging elems/s regressions beyond the noise threshold
# (warn-only in CI; drop -warn locally to gate). BENCHDIFF_ARGS widens the
# sweep, e.g. BENCHDIFF_ARGS="" for the full sizes.
BENCHDIFF_BASE ?= BENCH_9.json
BENCHDIFF_ARGS ?= -max 65536
benchdiff:
	$(GO) run ./cmd/relbench -procs 1 -out BENCH_HEAD.json $(BENCHDIFF_ARGS)
	$(GO) run ./cmd/benchdiff -base $(BENCHDIFF_BASE) -new BENCH_HEAD.json -warn

# fuzz-smoke runs each native fuzz target (operator vs plain-Go reference,
# see internal/relops/fuzz_test.go and internal/graph/fuzz_test.go) for a
# short exploration budget beyond the committed seed corpus. Go allows one
# -fuzz pattern per invocation, so the targets run back to back.
# FuzzGroupByBackends differentially fuzzes the shuffle backend against the
# bitonic backend; the graph targets replay oblivious CC/MSF against their
# sequential references on fuzzer-shaped graphs.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzJoinAll$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzJoinAllCapacityAdvisor$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzJoin$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzGroupBy$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzDistinct$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/relops -run '^$$' -fuzz '^FuzzGroupByBackends$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzConnectedComponents$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzMSF$$' -fuzztime $(FUZZTIME)

# chaos-smoke is the query-lifecycle leg: under -race, the fault-injection
# chaos storm (concurrent queries with injected panics, slow passes, and
# client cancellations against a tight-admission server), the deadline /
# lane-retirement / drain / disconnect pins in internal/serve, the
# session-level cancellation and poisoning tests at the root, and the pool
# cancellation/panic-isolation tests in internal/forkjoin. Bounded well
# under a minute; the faultinject registry is process-global, so the legs
# run package by package.
chaos-smoke:
	$(GO) test -race ./internal/serve -run 'TestChaos|TestQueryTimeout|TestLaneRetired|TestShutdownDrain|TestClientDisconnect' -count 1
	$(GO) test -race . -run 'TestCancelToken|TestSessionInterrupt|TestRunQueryCtx|TestPanic|TestUntrippedToken|TestCtxWatcher' -count 1
	$(GO) test -race ./internal/forkjoin -run 'TestSerialCheck|TestRunCancel|TestForkPanic|TestCanceledError' -count 1

# serve-smoke is the end-to-end serving check: build oblivserve, start it
# on a random free port, load the generated example through the client,
# run the fused -keyorder -as query, and assert (a) the identical repeat
# is a cache hit with 0 executed sorts and (b) the follow-up over the
# materialization rides the order token to fewer sorts than its cold
# plan. Exercises the client wire structs against the live server.
serve-smoke:
	sh scripts/serve_smoke.sh

# docker builds the oblivserve container image (multi-stage, static
# binary on scratch-ish alpine). Override the tag with DOCKER_TAG.
DOCKER_TAG ?= oblivserve:latest
docker:
	docker build -t $(DOCKER_TAG) .

clean:
	$(GO) clean ./...
