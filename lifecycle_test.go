package oblivmc

// Query-lifecycle tests: cooperative cancellation (token, Interrupt,
// context deadline), panic isolation and session poisoning, the
// untripped-token trace pin, and watcher-goroutine hygiene.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"oblivmc/internal/faultinject"
	"oblivmc/internal/prng"
)

// lcRows builds a deterministic grouped relation sized for a few sort
// passes per query.
func lcRows(n int) []Row {
	src := prng.New(99)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Key: src.Uint64n(16), Val: src.Uint64n(1000)}
	}
	return rows
}

// TestCancelTokenPreTripped aborts one-shot surfaces at their first
// checkpoint: a tripped Config.Cancel must surface ErrCanceled (with a
// public site, never data) from every layer of the pipeline.
func TestCancelTokenPreTripped(t *testing.T) {
	keys := make([]uint64, 256)
	src := prng.New(5)
	for i := range keys {
		keys[i] = src.Uint64() >> 2 // keys must stay below 2^62
	}
	tripped := NewCancel()
	tripped.Cancel()
	cfg := Config{Mode: ModeSerial, Cancel: tripped}

	cases := []struct {
		name string
		run  func() error
	}{
		{"Sort", func() error { _, _, err := Sort(cfg, keys); return err }},
		{"Shuffle", func() error { _, _, err := Shuffle(cfg, keys); return err }},
		{"GroupTotals", func() error {
			_, _, err := GroupTotals(cfg, []uint64{1, 2, 1, 2}, []uint64{10, 20, 30, 40})
			return err
		}},
		{"ConnectedComponents", func() error {
			_, _, err := ConnectedComponents(cfg, 8, [][2]int{{0, 1}, {2, 3}, {4, 5}})
			return err
		}},
		{"ListRank", func() error {
			_, _, err := ListRank(cfg, []int{1, 2, 3, 3}, nil)
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.run()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s with tripped token: err = %v, want ErrCanceled", tc.name, err)
		}
		if !strings.Contains(err.Error(), "(at ") {
			t.Fatalf("%s: canceled error %q carries no public site", tc.name, err)
		}
	}
}

// TestSessionInterrupt interrupts an in-flight query from another
// goroutine: the query returns ErrCanceled, and — cancellation does not
// poison — the same session then runs the query to completion.
func TestSessionInterrupt(t *testing.T) {
	defer faultinject.Reset()
	sess := NewSession(Config{Mode: ModeSerial})
	defer sess.Close()
	tab := mustTable(t, lcRows(256))
	q := Query{GroupBy: AggSum, KeyOrderOut: true}

	// Stretch every sort pass so the interrupt lands mid-query.
	faultinject.SlowEvery("sort.pass", 1, 30*time.Millisecond)
	go func() {
		for faultinject.Hits("sort.pass") == 0 {
			time.Sleep(500 * time.Microsecond)
		}
		sess.Interrupt()
	}()
	_, _, err := sess.RunQuery(tab, q)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("interrupted query: err = %v, want ErrCanceled", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatalf("interrupt misreported as deadline: %v", err)
	}
	if sess.Poisoned() {
		t.Fatal("cooperative cancellation must not poison the session")
	}

	faultinject.Reset()
	out, _, err := sess.RunQuery(tab, q)
	if err != nil {
		t.Fatalf("query after interrupt: %v", err)
	}
	want := keySorted(refQuery(tab.Rows(), Query{GroupBy: AggSum}))
	got := out.Rows()
	if len(got) != len(want) {
		t.Fatalf("post-interrupt rows: %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-interrupt row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRunQueryCtxDeadline expires a context deadline mid-query: the abort
// must surface as ErrDeadline (matchable), carrying the public pass count.
func TestRunQueryCtxDeadline(t *testing.T) {
	defer faultinject.Reset()
	sess := NewSession(Config{Mode: ModeSerial})
	defer sess.Close()
	tab := mustTable(t, lcRows(256))

	faultinject.SlowEvery("sort.pass", 1, 40*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := sess.RunQueryCtx(ctx, tab, Query{GroupBy: AggSum, KeyOrderOut: true})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("deadline query: err = %v, want ErrDeadline", err)
	}
	if sess.Poisoned() {
		t.Fatal("deadline abort must not poison the session")
	}

	// An already-expired context must fail before executing anything.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, _, err = sess.RunQueryCtx(done, tab, Query{Distinct: true})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want ErrCanceled", err)
	}
}

// TestPanicPoisonsSession injects a panic into a sort pass: the query
// fails typed (ErrInternal via *PanicError), the session reports itself
// poisoned and refuses the next query; a rebuilt session works.
func TestPanicPoisonsSession(t *testing.T) {
	defer faultinject.Reset()
	sess := NewSession(Config{Mode: ModeSerial})
	defer sess.Close()
	tab := mustTable(t, lcRows(128))
	q := Query{GroupBy: AggCount}

	faultinject.PanicAt("sort.pass", 1)
	_, _, err := sess.RunQuery(tab, q)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("injected panic: err = %v, want ErrInternal", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic: err %T, want *PanicError", err)
	}
	if _, ok := pe.Val.(*faultinject.Injected); !ok {
		t.Fatalf("PanicError.Val = %T (%v), want *faultinject.Injected", pe.Val, pe.Val)
	}
	if !sess.Poisoned() {
		t.Fatal("session must report poisoned after a panic")
	}
	faultinject.Reset()
	if _, _, err := sess.RunQuery(tab, q); !errors.Is(err, ErrInternal) {
		t.Fatalf("poisoned session accepted a query (err = %v)", err)
	}

	fresh := NewSession(Config{Mode: ModeSerial})
	defer fresh.Close()
	if _, _, err := fresh.RunQuery(tab, q); err != nil {
		t.Fatalf("rebuilt session: %v", err)
	}
}

// TestPanicTypedOnParallelPool routes an injected panic through the
// work-stealing executor: the panic must quiesce the pool, surface typed,
// and leave the (rebuilt) path healthy under the same process.
func TestPanicTypedOnParallelPool(t *testing.T) {
	defer faultinject.Reset()
	sess := NewSession(Config{Mode: ModeParallel, Workers: 4})
	defer sess.Close()
	tab := mustTable(t, lcRows(256))

	faultinject.PanicAt("sort.pass", 1)
	_, _, err := sess.RunQuery(tab, Query{GroupBy: AggSum})
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("parallel injected panic: err = %v, want ErrInternal", err)
	}
	faultinject.Reset()

	fresh := NewSession(Config{Mode: ModeParallel, Workers: 4})
	defer fresh.Close()
	if _, _, err := fresh.RunQuery(tab, Query{GroupBy: AggSum}); err != nil {
		t.Fatalf("fresh parallel session after panic: %v", err)
	}
}

// TestUntrippedTokenLeavesTraceIdentical is the cancellation-leakage pin:
// arming a token that never trips must leave the metered trace (work,
// span, access-pattern fingerprint) byte-identical to a run with no
// token, across the sort pipeline and a graph operator.
func TestUntrippedTokenLeavesTraceIdentical(t *testing.T) {
	cfg := Config{Mode: ModeMetered, Trace: true, Seed: 11}
	keys := make([]uint64, 512)
	src := prng.New(17)
	for i := range keys {
		keys[i] = src.Uint64() >> 2 // keys must stay below 2^62
	}

	_, repA, err := Sort(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	cfgTok := cfg
	cfgTok.Cancel = NewCancel()
	_, repB, err := Sort(cfgTok, keys)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Work != repB.Work || repA.Span != repB.Span || repA.MemOps != repB.MemOps {
		t.Fatalf("token changed sort metrics: %+v vs %+v", repA, repB)
	}
	if !repA.TraceFingerprint.Equal(repB.TraceFingerprint) {
		t.Fatal("untripped token changed the sort trace fingerprint")
	}

	edges := [][2]int{{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 7}}
	_, gA, err := ConnectedComponents(cfg, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	_, gB, err := ConnectedComponents(cfgTok, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	if gA.Work != gB.Work || gA.Span != gB.Span || !gA.TraceFingerprint.Equal(gB.TraceFingerprint) {
		t.Fatal("untripped token changed the components trace")
	}
}

// TestCtxWatcherNoGoroutineLeak runs many context-carrying queries and
// requires the watcher goroutines to drain afterwards.
func TestCtxWatcherNoGoroutineLeak(t *testing.T) {
	sess := NewSession(Config{Mode: ModeSerial})
	defer sess.Close()
	tab := mustTable(t, lcRows(64))
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if _, _, err := sess.RunQueryCtx(ctx, tab, Query{GroupBy: AggSum}); err != nil {
			t.Fatal(err)
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after 30 ctx queries", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
