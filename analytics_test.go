package oblivmc

import (
	"testing"

	"oblivmc/internal/prng"
)

func TestGroupTotals(t *testing.T) {
	groups := []uint64{2, 1, 2, 3, 1, 2}
	values := []uint64{10, 5, 20, 7, 3, 30}
	got, _, err := GroupTotals(Config{Mode: ModeSerial}, groups, values)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{60, 8, 60, 7, 8, 60}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestGroupTotalsRandomVsRef(t *testing.T) {
	src := prng.New(3)
	const n = 300
	groups := make([]uint64, n)
	values := make([]uint64, n)
	ref := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		groups[i] = src.Uint64n(20)
		values[i] = src.Uint64n(1000)
		ref[groups[i]] += values[i]
	}
	got, _, err := GroupTotals(Config{Mode: ModeSerial}, groups, values)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got[i] != ref[groups[i]] {
			t.Fatalf("record %d: got %d, want %d", i, got[i], ref[groups[i]])
		}
	}
}

func TestGroupTotalsOblivious(t *testing.T) {
	// Different group structures, same size → same access pattern.
	mk := func(seed uint64) ([]uint64, []uint64) {
		src := prng.New(seed)
		g := make([]uint64, 64)
		v := make([]uint64, 64)
		for i := range g {
			g[i] = src.Uint64n(8)
			v[i] = src.Uint64n(100)
		}
		return g, v
	}
	g1, v1 := mk(1)
	g2, v2 := mk(2)
	_, r1, _ := GroupTotals(Config{Mode: ModeMetered, Trace: true}, g1, v1)
	_, r2, _ := GroupTotals(Config{Mode: ModeMetered, Trace: true}, g2, v2)
	if !r1.TraceFingerprint.Equal(r2.TraceFingerprint) {
		t.Fatal("group-by access pattern depends on the data")
	}
}

func TestGroupTotalsValidation(t *testing.T) {
	if _, _, err := GroupTotals(Config{}, nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, _, err := GroupTotals(Config{}, []uint64{1}, []uint64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// The old 2^40 packed-key ceiling is lifted: any key below the filler
	// sentinel is legal.
	if _, _, err := GroupTotals(Config{Mode: ModeSerial}, []uint64{1 << 41, ^uint64(0) - 1}, []uint64{1, 2}); err != nil {
		t.Fatalf("full-range group key rejected: %v", err)
	}
	if _, _, err := GroupTotals(Config{}, []uint64{^uint64(0)}, []uint64{1}); err == nil {
		t.Fatal("sentinel group key accepted")
	}
}

func TestLookup(t *testing.T) {
	keys := []uint64{10, 20, 30}
	vals := []uint64{100, 200, 300}
	queries := []uint64{20, 99, 10, 20}
	got, found, _, err := Lookup(Config{Mode: ModeSerial}, keys, vals, queries)
	if err != nil {
		t.Fatal(err)
	}
	wantV := []uint64{200, 0, 100, 200}
	wantF := []bool{true, false, true, true}
	for i := range wantV {
		if found[i] != wantF[i] {
			t.Fatalf("found[%d] = %v", i, found[i])
		}
		if found[i] && got[i] != wantV[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], wantV[i])
		}
	}
}

func TestLookupOblivious(t *testing.T) {
	mk := func(seed uint64) ([]uint64, []uint64, []uint64) {
		src := prng.New(seed)
		keys := make([]uint64, 32)
		vals := make([]uint64, 32)
		qs := make([]uint64, 16)
		for i := range keys {
			keys[i] = uint64(i)*100 + src.Uint64n(50)
			vals[i] = src.Uint64()
		}
		for i := range qs {
			qs[i] = src.Uint64n(3200)
		}
		return keys, vals, qs
	}
	k1, v1, q1 := mk(1)
	k2, v2, q2 := mk(2)
	_, _, r1, _ := Lookup(Config{Mode: ModeMetered, Trace: true}, k1, v1, q1)
	_, _, r2, _ := Lookup(Config{Mode: ModeMetered, Trace: true}, k2, v2, q2)
	if !r1.TraceFingerprint.Equal(r2.TraceFingerprint) {
		t.Fatal("lookup access pattern depends on the data")
	}
}
